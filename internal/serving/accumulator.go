package serving

import "sort"

// modelKey extracts the accumulator bucket key of an outcome: the
// served query's model id. Empty on single-model deployments (the
// replica normalizes queries to the tenant's canonical model id at
// dispatch, which is "" there), so pre-multi-tenant streams never
// allocate buckets.
func modelKey(r Served) string { return r.Query.Model }

// classKey extracts the SLO-class bucket key of an outcome: the
// query's class label. Empty for unclassed traffic (the pre-cohort
// default), so existing streams never allocate class buckets.
func classKey(r Served) string { return r.Query.Class }

// maxLatencySamples caps each per-accumulator latency reservoir. Streams
// up to the cap yield exact percentiles; beyond it, reservoir sampling
// keeps memory and read cost bounded for long-running servers at the
// price of approximate P50/P95/P99 (every other aggregate stays exact).
const maxLatencySamples = 4096

// reservoir is a bounded uniform sample of a latency stream (Algorithm R
// once the cap is reached). The replacement stream is a deterministic
// xorshift64, so seeded runs stay reproducible. The zero value is ready.
type reservoir struct {
	// xs holds the samples; seen counts every value offered.
	xs   []float64
	seen int
	rng  uint64
}

// observe records one value.
func (r *reservoir) observe(x float64) {
	r.seen++
	if len(r.xs) < maxLatencySamples {
		r.xs = append(r.xs, x)
		return
	}
	if r.rng == 0 {
		r.rng = 0x9E3779B97F4A7C15
	}
	r.rng ^= r.rng << 13
	r.rng ^= r.rng >> 7
	r.rng ^= r.rng << 17
	if j := int(r.rng % uint64(r.seen)); j < maxLatencySamples {
		r.xs[j] = x
	}
}

// merge folds another reservoir's content in. While both sides are exact
// (under the cap), so is the merge; once either side sampled, the merged
// reservoir draws from each side proportionally to its traffic (seen),
// so percentiles stay traffic-weighted — a near-idle replica cannot
// dominate the cluster's folded P99.
func (r *reservoir) merge(b *reservoir) {
	exact := r.seen == len(r.xs) && b.seen == len(b.xs)
	total := r.seen + b.seen
	if exact || total == 0 {
		r.xs = append(r.xs, b.xs...)
		r.seen = total
		return
	}
	target := maxLatencySamples
	if total < target {
		target = total
	}
	// Proportional draw; reservoir samples are exchangeable, so a prefix
	// is itself a uniform sample (and keeps the merge deterministic).
	na := int(float64(target) * float64(r.seen) / float64(total))
	if na > len(r.xs) {
		na = len(r.xs)
	}
	nb := target - na
	if nb > len(b.xs) {
		nb = len(b.xs)
	}
	r.xs = append(r.xs[:na:na], b.xs[:nb]...)
	r.seen = total
}

// snapshot deep-copies the reservoir.
func (r *reservoir) snapshot() reservoir {
	cp := *r
	cp.xs = append([]float64(nil), r.xs...)
	return cp
}

// sorted returns a sorted copy of the samples.
func (r *reservoir) sorted() []float64 {
	xs := append([]float64(nil), r.xs...)
	sort.Float64s(xs)
	return xs
}

// Accumulator folds served outcomes into running aggregates without
// retaining the full []Served. Each cluster replica owns one (updated
// under the replica's lock) for live traffic, and the simq engine owns
// one per replica for virtual-time runs; readers fold snapshots instead
// of funneling every query through a global mutex. The zero value is
// ready to use. Not safe for concurrent use.
type Accumulator struct {
	queries                                   int
	sumLat, sumAcc, sumHit                    float64
	latMet, accMet, feasible, swaps, recaches int
	hitBytes                                  int64
	energyJ                                   float64
	// lats samples individual service latencies for percentile folding.
	lats reservoir

	// Open-loop extensions (fed by AddTimed; zero for closed-loop use).
	// dropped counts abandoned queries, e2eMet the queries that finished
	// inside their original budget; e2e samples end-to-end latencies of
	// served queries; the arrival/finish span yields goodput.
	dropped          int
	e2eMet           int
	sumE2E, sumQueue float64
	e2e              reservoir
	spanSet          bool
	minArrival       float64
	maxFinish        float64

	// Batch occupancy (fed by ObserveBatch; zero when micro-batching is
	// off): batches counts accelerator passes, sumBatch their total
	// member count, maxBatch the largest flush.
	batches, sumBatch, maxBatch int

	// perModel buckets the same aggregates by model id on multi-tenant
	// streams (lazily allocated; nil for single-model streams, whose
	// queries carry an empty model id). Children never have children.
	perModel map[string]*Accumulator

	// perClass buckets the same aggregates by SLO class on cohort
	// streams (lazily allocated; nil while every query is unclassed).
	// Like perModel, children never have children.
	perClass map[string]*Accumulator
}

// modelBucket returns (allocating on first use) the child accumulator
// for a model id.
func (a *Accumulator) modelBucket(model string) *Accumulator {
	if a.perModel == nil {
		a.perModel = make(map[string]*Accumulator)
	}
	b := a.perModel[model]
	if b == nil {
		b = &Accumulator{}
		a.perModel[model] = b
	}
	return b
}

// classBucket returns (allocating on first use) the child accumulator
// for an SLO class.
func (a *Accumulator) classBucket(class string) *Accumulator {
	if a.perClass == nil {
		a.perClass = make(map[string]*Accumulator)
	}
	b := a.perClass[class]
	if b == nil {
		b = &Accumulator{}
		a.perClass[class] = b
	}
	return b
}

// ObserveBatch records one micro-batch flush of n members (n = 1 for a
// solo serve when batching is enabled). Callers fold it once per
// accelerator pass, alongside the per-member Add/AddTimed calls.
func (a *Accumulator) ObserveBatch(n int) {
	if n <= 0 {
		return
	}
	a.batches++
	a.sumBatch += n
	if n > a.maxBatch {
		a.maxBatch = n
	}
}

// Add folds one closed-loop outcome (into the cluster-wide aggregates
// and, when the query carries a model id, the model's bucket).
func (a *Accumulator) Add(r Served) {
	a.addServed(r)
	if m := modelKey(r); m != "" {
		a.modelBucket(m).addServed(r)
	}
	if cl := classKey(r); cl != "" {
		a.classBucket(cl).addServed(r)
	}
}

// addServed folds one outcome into THIS accumulator only.
func (a *Accumulator) addServed(r Served) {
	a.queries++
	a.sumLat += r.Latency
	a.sumAcc += r.Accuracy
	a.sumHit += r.HitRatio
	a.hitBytes += r.HitBytes
	a.energyJ += r.OffChipEnergyJ
	if r.LatencyMet {
		a.latMet++
	}
	if r.AccuracyMet {
		a.accMet++
	}
	if r.Feasible {
		a.feasible++
	}
	if r.CacheSwapped {
		a.swaps++
	}
	if r.Recached {
		a.recaches++
	}
	a.lats.observe(r.Latency)
}

// AddTimed folds one open-loop outcome: service aggregates for served
// queries (their LatencyMet is already end-to-end, judged by the
// engine), plus queueing telemetry — E2E latency reservoir, queue
// delay, drops, and the arrival/finish span goodput is computed over.
// Outcomes carrying a model id (the engine populates the Served.Query
// echo even for drops) also fold into the model's bucket, so per-model
// SLO and tail latency stay honest about drops.
func (a *Accumulator) AddTimed(r TimedServed) {
	a.addTimed(r)
	if m := modelKey(r.Served); m != "" {
		a.modelBucket(m).addTimed(r)
	}
	if cl := classKey(r.Served); cl != "" {
		a.classBucket(cl).addTimed(r)
	}
}

// addTimed folds one timed outcome into THIS accumulator only.
func (a *Accumulator) addTimed(r TimedServed) {
	if r.Dropped {
		a.queries++
		a.dropped++
	} else {
		a.addServed(r.Served)
		if r.LatencyMet {
			a.e2eMet++
		}
		a.sumE2E += r.E2ELatency
		a.sumQueue += r.QueueDelay
		a.e2e.observe(r.E2ELatency)
	}
	if !a.spanSet || r.Arrival < a.minArrival {
		a.minArrival = r.Arrival
	}
	if !a.spanSet || r.Finish > a.maxFinish {
		a.maxFinish = r.Finish
	}
	a.spanSet = true
}

// Merge folds another accumulator's content into a (model buckets
// merge by key).
func (a *Accumulator) Merge(b *Accumulator) {
	a.merge(b)
	for m, bc := range b.perModel {
		a.modelBucket(m).merge(bc)
	}
	for cl, bc := range b.perClass {
		a.classBucket(cl).merge(bc)
	}
}

// merge folds b's own aggregates (not its model buckets) into a.
func (a *Accumulator) merge(b *Accumulator) {
	a.queries += b.queries
	a.sumLat += b.sumLat
	a.sumAcc += b.sumAcc
	a.sumHit += b.sumHit
	a.hitBytes += b.hitBytes
	a.energyJ += b.energyJ
	a.latMet += b.latMet
	a.accMet += b.accMet
	a.feasible += b.feasible
	a.swaps += b.swaps
	a.recaches += b.recaches
	a.lats.merge(&b.lats)

	a.dropped += b.dropped
	a.e2eMet += b.e2eMet
	a.sumE2E += b.sumE2E
	a.sumQueue += b.sumQueue
	a.e2e.merge(&b.e2e)
	a.batches += b.batches
	a.sumBatch += b.sumBatch
	if b.maxBatch > a.maxBatch {
		a.maxBatch = b.maxBatch
	}
	if b.spanSet {
		if !a.spanSet || b.minArrival < a.minArrival {
			a.minArrival = b.minArrival
		}
		if !a.spanSet || b.maxFinish > a.maxFinish {
			a.maxFinish = b.maxFinish
		}
		a.spanSet = true
	}
}

// Snapshot returns a deep copy safe to merge after the lock is released.
func (a *Accumulator) Snapshot() *Accumulator {
	cp := *a
	cp.lats = a.lats.snapshot()
	cp.e2e = a.e2e.snapshot()
	if a.perModel != nil {
		cp.perModel = make(map[string]*Accumulator, len(a.perModel))
		for m, b := range a.perModel {
			cp.perModel[m] = b.Snapshot()
		}
	}
	if a.perClass != nil {
		cp.perClass = make(map[string]*Accumulator, len(a.perClass))
		for cl, b := range a.perClass {
			cp.perClass[cl] = b.Snapshot()
		}
	}
	return &cp
}

// Queries returns the number of folded outcomes.
func (a *Accumulator) Queries() int { return a.queries }

// Summary renders the accumulated aggregates, matching Summarize over
// the same outcomes (percentiles are sample-exact up to
// maxLatencySamples latencies, reservoir-approximate beyond). Averages
// are over served queries; SLO fractions are over all queries, so drops
// count as misses.
func (a *Accumulator) Summary() Summary {
	s := Summary{Queries: a.queries, Dropped: a.dropped}
	if a.queries == 0 {
		return s
	}
	n := float64(a.queries)
	served := a.queries - a.dropped
	if served > 0 {
		ns := float64(served)
		s.AvgLatency = a.sumLat / ns
		s.AvgAccuracy = a.sumAcc / ns
		s.AvgHitRatio = a.sumHit / ns
	}
	s.HitBytes = a.hitBytes
	s.OffChipEnergyJ = a.energyJ
	s.LatencySLO = float64(a.latMet) / n
	s.AccuracySLO = float64(a.accMet) / n
	s.FeasibleFraction = float64(a.feasible) / n
	s.CacheSwaps = a.swaps
	s.Recaches = a.recaches
	// Percentiles stay zero (not NaN) when every query was dropped, so
	// summaries remain JSON-marshalable.
	if lats := a.lats.sorted(); len(lats) > 0 {
		s.P50Latency = percentile(lats, 0.50)
		s.P95Latency = percentile(lats, 0.95)
		s.P99Latency = percentile(lats, 0.99)
	}
	if a.dropped > 0 || a.e2e.seen > 0 {
		if served > 0 {
			ns := float64(served)
			s.AvgE2E = a.sumE2E / ns
			s.AvgQueueDelay = a.sumQueue / ns
		}
		if e2e := a.e2e.sorted(); len(e2e) > 0 {
			s.P50E2E = percentile(e2e, 0.50)
			s.P95E2E = percentile(e2e, 0.95)
			s.P99E2E = percentile(e2e, 0.99)
		}
		s.E2ESLO = float64(a.e2eMet) / n
		if span := a.maxFinish - a.minArrival; a.spanSet && span > 0 {
			s.Goodput = float64(a.e2eMet) / span
		}
	}
	if a.batches > 0 {
		s.Batches = a.batches
		s.AvgBatchSize = float64(a.sumBatch) / float64(a.batches)
		s.MaxBatchSize = a.maxBatch
	}
	if len(a.perModel) > 0 {
		models := make([]string, 0, len(a.perModel))
		for m := range a.perModel {
			models = append(models, m)
		}
		sort.Strings(models)
		s.PerModel = make([]ModelSummary, 0, len(models))
		for _, m := range models {
			s.PerModel = append(s.PerModel, ModelSummary{Model: m, Summary: a.perModel[m].Summary()})
		}
	}
	if len(a.perClass) > 0 {
		classes := make([]string, 0, len(a.perClass))
		for cl := range a.perClass {
			classes = append(classes, cl)
		}
		sort.Strings(classes)
		s.PerClass = make([]ClassSummary, 0, len(classes))
		for _, cl := range classes {
			s.PerClass = append(s.PerClass, ClassSummary{Class: cl, Summary: a.perClass[cl].Summary()})
		}
		s.FairnessJain = classFairness(s.PerClass)
	}
	return s
}
