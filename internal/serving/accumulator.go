package serving

import "sort"

// maxLatencySamples caps the per-accumulator latency reservoir. Streams
// up to the cap yield exact percentiles; beyond it, reservoir sampling
// keeps memory and read cost bounded for long-running servers at the
// price of approximate P50/P99 (every other aggregate stays exact).
const maxLatencySamples = 4096

// Accumulator folds served outcomes into running aggregates without
// retaining the full []Served. Each cluster replica owns one, updated
// under the replica's lock; readers fold per-replica snapshots instead
// of funneling every query through a global mutex. The zero value is
// ready to use. Not safe for concurrent use.
type Accumulator struct {
	queries                         int
	sumLat, sumAcc, sumHit          float64
	latMet, accMet, feasible, swaps int
	hitBytes                        int64
	energyJ                         float64
	// lats is a bounded reservoir of individual latencies for
	// percentile folding; latSeen counts every latency offered to it.
	lats    []float64
	latSeen int
	// rng drives reservoir replacement (xorshift64; deterministic for a
	// deterministic add order, so seeded runs stay reproducible).
	rng uint64
}

// Add folds one outcome.
func (a *Accumulator) Add(r Served) {
	a.queries++
	a.sumLat += r.Latency
	a.sumAcc += r.Accuracy
	a.sumHit += r.HitRatio
	a.hitBytes += r.HitBytes
	a.energyJ += r.OffChipEnergyJ
	if r.LatencyMet {
		a.latMet++
	}
	if r.AccuracyMet {
		a.accMet++
	}
	if r.Feasible {
		a.feasible++
	}
	if r.CacheSwapped {
		a.swaps++
	}
	a.observeLatency(r.Latency)
}

// observeLatency records one latency in the bounded reservoir
// (Algorithm R once the cap is reached).
func (a *Accumulator) observeLatency(lat float64) {
	a.latSeen++
	if len(a.lats) < maxLatencySamples {
		a.lats = append(a.lats, lat)
		return
	}
	if a.rng == 0 {
		a.rng = 0x9E3779B97F4A7C15
	}
	a.rng ^= a.rng << 13
	a.rng ^= a.rng >> 7
	a.rng ^= a.rng << 17
	if j := int(a.rng % uint64(a.latSeen)); j < maxLatencySamples {
		a.lats[j] = lat
	}
}

// Merge folds another accumulator's content into a. While both
// reservoirs are exact (under the cap), so is the merge; once either
// side sampled, the merged reservoir draws from each side proportionally
// to its traffic (latSeen), so percentiles stay traffic-weighted — a
// near-idle replica cannot dominate the cluster's folded P99.
func (a *Accumulator) Merge(b *Accumulator) {
	a.queries += b.queries
	a.sumLat += b.sumLat
	a.sumAcc += b.sumAcc
	a.sumHit += b.sumHit
	a.hitBytes += b.hitBytes
	a.energyJ += b.energyJ
	a.latMet += b.latMet
	a.accMet += b.accMet
	a.feasible += b.feasible
	a.swaps += b.swaps
	exact := a.latSeen == len(a.lats) && b.latSeen == len(b.lats)
	total := a.latSeen + b.latSeen
	if exact || total == 0 {
		a.lats = append(a.lats, b.lats...)
		a.latSeen = total
		return
	}
	target := maxLatencySamples
	if total < target {
		target = total
	}
	// Proportional draw; reservoir samples are exchangeable, so a prefix
	// is itself a uniform sample (and keeps the merge deterministic).
	na := int(float64(target) * float64(a.latSeen) / float64(total))
	if na > len(a.lats) {
		na = len(a.lats)
	}
	nb := target - na
	if nb > len(b.lats) {
		nb = len(b.lats)
	}
	a.lats = append(a.lats[:na:na], b.lats[:nb]...)
	a.latSeen = total
}

// Snapshot returns a deep copy safe to merge after the lock is released.
func (a *Accumulator) Snapshot() *Accumulator {
	cp := *a
	cp.lats = append([]float64(nil), a.lats...)
	return &cp
}

// Queries returns the number of folded outcomes.
func (a *Accumulator) Queries() int { return a.queries }

// Summary renders the accumulated aggregates, matching Summarize over
// the same outcomes (percentiles are sample-exact up to
// maxLatencySamples latencies, reservoir-approximate beyond).
func (a *Accumulator) Summary() Summary {
	s := Summary{Queries: a.queries}
	if a.queries == 0 {
		return s
	}
	n := float64(a.queries)
	s.AvgLatency = a.sumLat / n
	s.AvgAccuracy = a.sumAcc / n
	s.AvgHitRatio = a.sumHit / n
	s.HitBytes = a.hitBytes
	s.OffChipEnergyJ = a.energyJ
	s.LatencySLO = float64(a.latMet) / n
	s.AccuracySLO = float64(a.accMet) / n
	s.FeasibleFraction = float64(a.feasible) / n
	s.CacheSwaps = a.swaps
	lats := append([]float64(nil), a.lats...)
	sort.Float64s(lats)
	s.P50Latency = percentile(lats, 0.50)
	s.P99Latency = percentile(lats, 0.99)
	return s
}
