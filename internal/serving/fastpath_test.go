package serving

import (
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// newFleet boots r replicas with or without the decision slow path,
// over one shared table. All replicas start at the default column;
// routed serving drifts their cache states apart as the run progresses.
func newFleet(t *testing.T, r int, slow bool) []*Replica {
	t.Helper()
	s, fr := fixtures(t, supernet.MobileNetV3)
	opt := Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       Full,
		Candidates: 12,
		Seed:       1,
		SlowPath:   slow,
	}
	table, _, err := BuildTable(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	reps := make([]*Replica, r)
	for i := range reps {
		o := opt
		o.Table = table
		sys, err := New(s, fr, o)
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = NewReplica(i, sys)
	}
	return reps
}

// TestRouterFastPathMatchesSlowPath is the router fast path's
// differential oracle: the fastest and affinity routers score from a
// cached per-replica snapshot on the fast path and recompute from
// scratch on the slow path; over identical fleets and an identical
// query stream — with every pick served virtually, so cache states
// drift and snapshots republish — the pick sequences and served
// outcomes must be bit-identical.
func TestRouterFastPathMatchesSlowPath(t *testing.T) {
	const replicas = 3
	fast := newFleet(t, replicas, false)
	slow := newFleet(t, replicas, true)
	var sys *System
	fast[0].Inspect(func(s *System) { sys = s })
	qs, err := workload.Uniform(300, accRange(sys), latRange(sys), 23)
	if err != nil {
		t.Fatal(err)
	}
	routers := []Router{NewFastest(), NewAffinity()}
	slowRouters := []Router{NewFastest(), NewAffinity()}
	for i, q := range qs {
		q.ID = i
		r := i % len(routers)
		pf := routers[r].Pick(q, fast)
		ps := slowRouters[r].Pick(q, slow)
		if pf != ps {
			t.Fatalf("query %d: pick diverged: fast %d vs slow %d", i, pf, ps)
		}
		of, err1 := fast[pf].ServeVirtual(q, q, false)
		os, err2 := slow[ps].ServeVirtual(q, q, false)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query %d: serve error divergence: %v vs %v", i, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if of != os {
			t.Fatalf("query %d: served outcome diverged:\nfast %+v\nslow %+v", i, of, os)
		}
	}
	// The fleets must also end in identical cache states.
	for i := range fast {
		var cf, cs int
		fast[i].Inspect(func(s *System) { cf = s.Scheduler().CacheColumn() })
		slow[i].Inspect(func(s *System) { cs = s.Scheduler().CacheColumn() })
		if cf != cs {
			t.Fatalf("replica %d: final cache column diverged: %d vs %d", i, cf, cs)
		}
	}
}

// TestAffinityScoreMatchesSlowPath pins the affinity router's cached
// (model -> score) snapshot table against the direct overlap
// computation on every replica and row.
func TestAffinityScoreMatchesSlowPath(t *testing.T) {
	fast := newFleet(t, 3, false)
	slow := newFleet(t, 3, true)
	var sys *System
	fast[0].Inspect(func(s *System) { sys = s })
	qs, err := workload.Uniform(50, accRange(sys), latRange(sys), 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		q.ID = i
		for r := range fast {
			sf := fast[r].AffinityScore(q)
			ss := slow[r].AffinityScore(q)
			if sf != ss {
				t.Fatalf("query %d replica %d: AffinityScore %v (fast) != %v (slow)", i, r, sf, ss)
			}
		}
	}
}
