package serving

import (
	"math"
	"testing"

	"sushi/internal/sched"
)

// classServed mints a timed outcome for one SLO class.
func classServed(class string, e2e float64, met, dropped bool) TimedServed {
	r := TimedServed{
		Served:     Served{Query: sched.Query{Class: class}, Latency: e2e / 2, LatencyMet: met},
		Arrival:    0,
		Finish:     e2e,
		E2ELatency: e2e,
	}
	r.Dropped = dropped
	if dropped {
		r.Served.LatencyMet = false
	}
	return r
}

// TestAccumulatorPerClass: classed outcomes land in per-class buckets
// (drops included), unclassed traffic allocates none, and Summary
// carries the sorted breakdown plus the Jain index.
func TestAccumulatorPerClass(t *testing.T) {
	var a Accumulator
	// gold: 2 served in SLO; batch: 1 served missing SLO + 1 drop;
	// one unclassed outcome that must not create a bucket.
	a.AddTimed(classServed("gold", 5e-3, true, false))
	a.AddTimed(classServed("gold", 6e-3, true, false))
	a.AddTimed(classServed("batch", 50e-3, false, false))
	a.AddTimed(classServed("batch", 0, false, true))
	a.AddTimed(classServed("", 1e-3, true, false))

	s := a.Summary()
	if len(s.PerClass) != 2 {
		t.Fatalf("got %d class slices, want 2 (unclassed traffic must not bucket)", len(s.PerClass))
	}
	if s.PerClass[0].Class != "batch" || s.PerClass[1].Class != "gold" {
		t.Fatalf("classes not sorted: %q, %q", s.PerClass[0].Class, s.PerClass[1].Class)
	}
	b, g := s.PerClass[0], s.PerClass[1]
	if b.Queries != 2 || b.Dropped != 1 || b.E2ESLO != 0 {
		t.Errorf("batch slice wrong: queries=%d dropped=%d e2eslo=%g", b.Queries, b.Dropped, b.E2ESLO)
	}
	if g.Queries != 2 || g.Dropped != 0 || g.E2ESLO != 1 {
		t.Errorf("gold slice wrong: queries=%d dropped=%d e2eslo=%g", g.Queries, g.Dropped, g.E2ESLO)
	}
	// Jain over attainments (1, 0): (1+0)^2 / (2*(1+0)) = 0.5.
	if math.Abs(s.FairnessJain-0.5) > 1e-12 {
		t.Errorf("fairness %g, want 0.5", s.FairnessJain)
	}

	// Merge and snapshot must preserve the class buckets.
	var b2 Accumulator
	b2.AddTimed(classServed("silver", 2e-3, true, false))
	a.Merge(b2.Snapshot())
	s = a.Summary()
	if len(s.PerClass) != 3 || s.PerClass[2].Class != "silver" {
		t.Fatalf("merge lost class buckets: %+v", s.PerClass)
	}
	// Jain over (1, 0, 1): 4 / (3*2) = 2/3.
	if math.Abs(s.FairnessJain-2.0/3.0) > 1e-12 {
		t.Errorf("fairness after merge %g, want %g", s.FairnessJain, 2.0/3.0)
	}
}

// TestSummarizePerClass: the slice-based Summarize agrees with the
// accumulator on class bucketing and fairness, and closed-loop classed
// streams judge fairness by the service-latency SLO.
func TestSummarizePerClass(t *testing.T) {
	rs := []Served{
		{Query: sched.Query{Class: "gold"}, Latency: 1e-3, LatencyMet: true},
		{Query: sched.Query{Class: "gold"}, Latency: 2e-3, LatencyMet: true},
		{Query: sched.Query{Class: "batch"}, Latency: 9e-3, LatencyMet: false},
		{Query: sched.Query{Class: "batch"}, Latency: 3e-3, LatencyMet: true},
		{Latency: 1e-3, LatencyMet: true}, // unclassed
	}
	s := Summarize(rs)
	if len(s.PerClass) != 2 {
		t.Fatalf("got %d class slices, want 2", len(s.PerClass))
	}
	if s.PerClass[0].Class != "batch" || s.PerClass[0].LatencySLO != 0.5 {
		t.Errorf("batch slice wrong: %+v", s.PerClass[0])
	}
	if s.PerClass[1].Class != "gold" || s.PerClass[1].LatencySLO != 1 {
		t.Errorf("gold slice wrong: %+v", s.PerClass[1])
	}
	// Closed-loop fairness over latency-SLO attainments (0.5, 1):
	// (1.5)^2 / (2 * 1.25) = 0.9.
	if math.Abs(s.FairnessJain-0.9) > 1e-12 {
		t.Errorf("fairness %g, want 0.9", s.FairnessJain)
	}

	// No classes: no slices, index 0 (undefined).
	plain := Summarize([]Served{{Latency: 1e-3}})
	if len(plain.PerClass) != 0 || plain.FairnessJain != 0 {
		t.Errorf("unclassed stream grew class artifacts: %+v", plain.PerClass)
	}

	// Degenerate all-zero attainment: equally starved reads as fair.
	if got := classFairness([]ClassSummary{{Class: "a"}, {Class: "b"}}); got != 1 {
		t.Errorf("all-zero fairness %g, want 1", got)
	}
	if got := classFairness(nil); got != 0 {
		t.Errorf("empty fairness %g, want 0", got)
	}
}
