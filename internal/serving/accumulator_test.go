package serving

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactPercentile is the ground truth the reservoir approximates.
func exactPercentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return percentile(s, p)
}

// relClose reports |got-want| <= tol·want (absolute fallback near zero).
func relClose(got, want, tol float64) bool {
	if math.Abs(want) < 1e-12 {
		return math.Abs(got) < tol
	}
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// feed folds each latency into a fresh accumulator and returns it with
// the raw stream.
func feed(lats []float64) *Accumulator {
	var a Accumulator
	for _, l := range lats {
		a.Add(Served{Latency: l})
	}
	return &a
}

// uniformLats draws n latencies uniform in [lo, hi) — deterministic.
func uniformLats(n int, lo, hi float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = lo + rng.Float64()*(hi-lo)
	}
	return out
}

// bimodalLats mixes a fast mode around fastMS and a slow mode around
// slowMS with the given slow fraction — the shape that breaks naive
// percentile sketches.
func bimodalLats(n int, fast, slow, slowFrac float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		if rng.Float64() < slowFrac {
			out[i] = slow * (0.9 + 0.2*rng.Float64())
		} else {
			out[i] = fast * (0.9 + 0.2*rng.Float64())
		}
	}
	return out
}

// TestReservoirPercentileToleranceUniform pins the bounded reservoir's
// p50/p95/p99 against exact percentiles on a uniform distribution five
// times the cap.
func TestReservoirPercentileToleranceUniform(t *testing.T) {
	lats := uniformLats(5*maxLatencySamples, 1e-3, 101e-3, 11)
	sum := feed(lats).Summary()
	for _, c := range []struct {
		name   string
		got    float64
		p, tol float64
	}{
		{"p50", sum.P50Latency, 0.50, 0.05},
		{"p95", sum.P95Latency, 0.95, 0.05},
		{"p99", sum.P99Latency, 0.99, 0.05},
	} {
		want := exactPercentile(lats, c.p)
		if !relClose(c.got, want, c.tol) {
			t.Errorf("uniform %s: reservoir %.4f vs exact %.4f (tol %.0f%%)",
				c.name, c.got, want, c.tol*100)
		}
	}
}

// TestReservoirPercentileToleranceBimodal: with 10% of traffic 20x
// slower, the sampled p50 must stay in the fast mode and p95/p99 in the
// slow mode.
func TestReservoirPercentileToleranceBimodal(t *testing.T) {
	lats := bimodalLats(5*maxLatencySamples, 2e-3, 40e-3, 0.10, 13)
	sum := feed(lats).Summary()
	for _, c := range []struct {
		name   string
		got    float64
		p, tol float64
	}{
		{"p50", sum.P50Latency, 0.50, 0.10},
		{"p95", sum.P95Latency, 0.95, 0.10},
		{"p99", sum.P99Latency, 0.99, 0.10},
	} {
		want := exactPercentile(lats, c.p)
		if !relClose(c.got, want, c.tol) {
			t.Errorf("bimodal %s: reservoir %.4f vs exact %.4f (tol %.0f%%)",
				c.name, c.got, want, c.tol*100)
		}
	}
	if sum.P50Latency > 10e-3 {
		t.Errorf("p50 %.1f ms left the fast mode", sum.P50Latency*1e3)
	}
	if sum.P99Latency < 30e-3 {
		t.Errorf("p99 %.1f ms missed the slow mode", sum.P99Latency*1e3)
	}
}

// TestMergedReservoirPercentileTolerance merges two sampled reservoirs
// with a 4:1 traffic imbalance and different distributions, and checks
// the traffic-weighted merge against exact percentiles of the combined
// stream.
func TestMergedReservoirPercentileTolerance(t *testing.T) {
	fast := uniformLats(4*maxLatencySamples, 1e-3, 5e-3, 17)
	slow := uniformLats(maxLatencySamples+500, 20e-3, 40e-3, 19)
	m := feed(fast).Snapshot()
	m.Merge(feed(slow))
	sum := m.Summary()
	combined := append(append([]float64(nil), fast...), slow...)
	// The merged reservoir subsamples both sides; p50 sits mid-range
	// where the density is flat, so allow a wider band there.
	for _, c := range []struct {
		name   string
		got    float64
		p, tol float64
	}{
		{"p50", sum.P50Latency, 0.50, 0.20},
		{"p95", sum.P95Latency, 0.95, 0.10},
		{"p99", sum.P99Latency, 0.99, 0.10},
	} {
		want := exactPercentile(combined, c.p)
		if !relClose(c.got, want, c.tol) {
			t.Errorf("merged %s: reservoir %.4f vs exact %.4f (tol %.0f%%)",
				c.name, c.got, want, c.tol*100)
		}
	}
	if sum.Queries != len(combined) {
		t.Fatalf("merged %d queries, want %d", sum.Queries, len(combined))
	}
}

// TestAddTimedAggregates pins the open-loop fold: drops count against
// SLO and goodput, E2E percentiles come from served queries only, and
// merge propagates the span.
func TestAddTimedAggregates(t *testing.T) {
	var a, b Accumulator
	// Replica a: two served (one in budget), one dropped.
	a.AddTimed(TimedServed{
		Served:  Served{Latency: 2e-3, Accuracy: 80, LatencyMet: true},
		Arrival: 0, Start: 0, Finish: 2e-3, E2ELatency: 2e-3,
	})
	a.AddTimed(TimedServed{
		Served:  Served{Latency: 2e-3, Accuracy: 70},
		Arrival: 1e-3, Start: 5e-3, Finish: 7e-3, QueueDelay: 4e-3, E2ELatency: 6e-3,
	})
	a.AddTimed(TimedServed{
		Arrival: 2e-3, Start: 9e-3, Finish: 9e-3, QueueDelay: 7e-3, E2ELatency: 7e-3,
		Dropped: true,
	})
	// Replica b: one served in budget, later finish.
	b.AddTimed(TimedServed{
		Served:  Served{Latency: 3e-3, Accuracy: 75, LatencyMet: true},
		Arrival: 4e-3, Start: 4e-3, Finish: 10e-3, E2ELatency: 6e-3,
	})
	m := a.Snapshot()
	m.Merge(&b)
	sum := m.Summary()
	if sum.Queries != 4 || sum.Dropped != 1 {
		t.Fatalf("counts %+v", sum)
	}
	if want := 2.0 / 4; sum.E2ESLO != want {
		t.Errorf("E2ESLO %g, want %g (drops are misses)", sum.E2ESLO, want)
	}
	if !relClose(sum.AvgAccuracy, 75, 1e-9) {
		t.Errorf("avg accuracy %g over served only, want 75", sum.AvgAccuracy)
	}
	if !relClose(sum.AvgE2E, (2e-3+6e-3+6e-3)/3, 1e-9) {
		t.Errorf("avg E2E %g", sum.AvgE2E)
	}
	// Span 0 → 10 ms, 2 SLO-met completions → 200 goodput.
	if !relClose(sum.Goodput, 200, 1e-9) {
		t.Errorf("goodput %g, want 200", sum.Goodput)
	}
	if sum.P99E2E != 6e-3 {
		t.Errorf("P99 E2E %g from served queries, want 6e-3", sum.P99E2E)
	}
	// A closed-loop accumulator reports no open-loop aggregates.
	var c Accumulator
	c.Add(Served{Latency: 1e-3, LatencyMet: true})
	if s := c.Summary(); s.E2ESLO != 0 || s.Goodput != 0 || s.P99E2E != 0 {
		t.Errorf("closed-loop summary leaked open-loop fields: %+v", s)
	}
}
