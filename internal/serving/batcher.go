package serving

import (
	"fmt"
	"sync"
	"time"

	"sushi/internal/sched"
)

// BatchPolicy configures SubGraph-stationary micro-batching: up to
// MaxBatch compatible queries (same scheduled SubNet, hence the same
// weights) are grouped into one accelerator pass, waiting at most
// Window for the batch to fill. The pair applies to both serving paths:
// the live batcher behind Cluster.Serve interprets Window as wall-clock
// time, the simq engine's batch former as virtual seconds (the numeric
// value carries over via Window.Seconds()). Batching is enabled only
// when MaxBatch > 1 AND Window > 0 — either knob at its zero/one value
// keeps the per-query path bit-identical to an unbatched deployment.
type BatchPolicy struct {
	// MaxBatch is B, the flush size (a full batch flushes immediately).
	MaxBatch int
	// Window is W, the longest a forming batch waits for more members,
	// measured from the head query's arrival.
	Window time.Duration
}

// Enabled reports whether the policy actually batches.
func (p BatchPolicy) Enabled() bool { return p.MaxBatch > 1 && p.Window > 0 }

// Validate rejects values the batch former would misread. The zero
// value is valid (batching off).
func (p BatchPolicy) Validate() error {
	if p.MaxBatch < 0 {
		return fmt.Errorf("serving: batch MaxBatch %d must be non-negative", p.MaxBatch)
	}
	if p.Window < 0 {
		return fmt.Errorf("serving: batch Window %v must be non-negative", p.Window)
	}
	return nil
}

// pendingServe is one live query waiting in a replica's batch former.
type pendingServe struct {
	q sched.Query
	// done delivers the outcome; buffered so the flusher never blocks on
	// a waiter that gave up (context cancellation).
	done chan serveOutcome
	// cancelled is set by the waiter when its context dies before the
	// flush; the flusher skips the query and releases its reservation.
	cancelled chan struct{}
}

// serveOutcome is the flusher's reply to one pending query.
type serveOutcome struct {
	res Served
	err error
}

// liveBatcher is one replica's wall-clock micro-batch former: the first
// pending query arms a Window timer, a full batch flushes immediately,
// and the flusher groups the drained queries by their scheduled SubNet
// (compatible queries share one ServeBatch pass; stragglers serve
// solo). All waiting happens OUTSIDE the replica lock, so batching
// never blocks the accelerator — it only gives concurrent callers a
// chance to share a weight fetch.
type liveBatcher struct {
	rep *Replica
	pol BatchPolicy

	mu      sync.Mutex
	pending []*pendingServe
	timer   *time.Timer
	// gen counts batch generations: take() bumps it, so a timerFlush
	// armed for an already-drained batch recognizes itself as stale
	// instead of flushing the NEXT forming batch at window age ~0.
	gen uint64
}

func newLiveBatcher(rep *Replica, pol BatchPolicy) *liveBatcher {
	return &liveBatcher{rep: rep, pol: pol}
}

// submit enqueues q and returns the channel its outcome will arrive on.
// The caller must have reserved the replica; the flusher releases the
// reservation for every drained query.
func (b *liveBatcher) submit(q sched.Query) *pendingServe {
	p := &pendingServe{
		q:         q,
		done:      make(chan serveOutcome, 1),
		cancelled: make(chan struct{}),
	}
	b.mu.Lock()
	b.pending = append(b.pending, p)
	switch {
	case len(b.pending) >= b.pol.MaxBatch:
		batch := b.take()
		b.mu.Unlock()
		// The filling caller is the leader: it executes the flush
		// synchronously (no extra goroutine on the full-batch fast path).
		b.flush(batch)
	case len(b.pending) == 1:
		// First member arms the window.
		gen := b.gen
		b.timer = time.AfterFunc(b.pol.Window, func() { b.timerFlush(gen) })
		b.mu.Unlock()
	default:
		b.mu.Unlock()
	}
	return p
}

// take drains the pending queue, disarms the timer and advances the
// batch generation. Callers own mu.
func (b *liveBatcher) take() []*pendingServe {
	batch := b.pending
	b.pending = nil
	b.gen++
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// timerFlush fires on window expiry for the batch generation it was
// armed on; if that batch was already drained (full-batch flush won the
// race), the timer is stale and must not touch the next forming batch.
func (b *liveBatcher) timerFlush(gen uint64) {
	b.mu.Lock()
	if b.gen != gen {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.mu.Unlock()
	b.flush(batch)
}

// liveKey is the live former's compatibility key: queries share one
// batched pass only when they target the same model and resolve to the
// same SubNet row under the same effective policy (different models
// read different weights; mixing policies would make ScheduleBatch
// reject the whole group).
type liveKey struct {
	// model is the query's canonical model id ("" on single-model
	// deployments; the cluster normalizes before submit).
	model string
	// row is the scheduled SubNet's table row (-1 = unschedulable,
	// served solo so the error path stays per-query).
	row int
	// policy is the per-query override (-1 = replica default).
	policy int
}

// flush serves a drained batch: cancelled members are skipped (their
// reservation released), the rest are grouped by scheduled SubNet +
// effective policy and each group runs as one batched pass on the
// replica.
func (b *liveBatcher) flush(batch []*pendingServe) {
	if len(batch) == 0 {
		return
	}
	// Group compatible queries, preserving submission order within and
	// across groups.
	var order []liveKey
	groups := map[liveKey][]*pendingServe{}
	for _, p := range batch {
		select {
		case <-p.cancelled:
			b.rep.done()
			continue
		default:
		}
		key := liveKey{model: p.q.Model, row: b.rep.ScheduledSubNet(p.q), policy: -1}
		if p.q.Policy != nil {
			key.policy = int(*p.q.Policy)
		}
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], p)
	}
	for _, key := range order {
		g := groups[key]
		if key.row < 0 {
			for _, p := range g {
				res, err := b.rep.serveReserved(p.q)
				p.done <- serveOutcome{res, err}
			}
			continue
		}
		qs := make([]sched.Query, len(g))
		for i, p := range g {
			qs[i] = p.q
		}
		rs, err := b.rep.serveBatchReserved(qs)
		for i, p := range g {
			if err != nil {
				p.done <- serveOutcome{err: err}
				continue
			}
			p.done <- serveOutcome{res: rs[i]}
		}
	}
}
