package serving

import (
	"context"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// newRecacheSystem builds a StateUnaware system booted on column 0: the
// scheduler itself never updates the cache, so every observed switch
// comes from the cache-management layer alone.
func newRecacheSystem(t *testing.T) *System {
	t.Helper()
	s, fr := fixtures(t, supernet.MobileNetV3)
	sys, err := New(s, fr, Options{
		Accel:        accel.ZCU104(),
		Policy:       sched.StrictLatency,
		Q:            4,
		Mode:         StateUnaware,
		Candidates:   12,
		StaticColumn: 0,
		Seed:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// drifting is the PR-2 drifting constraint stream: accuracy demand
// moves from the frontier's low end to its high end over the stream.
func drifting(t *testing.T, sys *System, n int) []sched.Query {
	t.Helper()
	tab := sys.Table()
	accLo := tab.SubNets[0].Accuracy
	accHi := tab.SubNets[tab.Rows()-1].Accuracy
	lat := latRange(sys)
	qs, err := workload.Drifting(n,
		workload.Range{Lo: accLo - 0.2, Hi: accLo + 0.3},
		workload.Range{Lo: accHi - 0.3, Hi: accHi},
		lat, lat, 9)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// TestRecacheSwitchesUnderDrift is the satellite property test's live
// half: a replica under a drifting query mix eventually switches its
// cache column, and the switch moves both the scheduler's belief and
// the simulator's Persistent Buffer coherently.
func TestRecacheSwitchesUnderDrift(t *testing.T) {
	sys := newRecacheSystem(t)
	rep := NewReplica(0, sys)
	rep.EnableRecache(RecachePolicy{Window: 8, MinGain: 0.01, Cooldown: 8})
	qs := drifting(t, sys, 120)
	sawRecached := false
	for _, q := range qs {
		res, err := rep.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.CacheSwapped {
			t.Fatalf("StateUnaware system emitted a scheduler-driven swap for query %d", q.ID)
		}
		sawRecached = sawRecached || res.Recached
	}
	switches, sec := rep.RecacheStats()
	if switches == 0 || !sawRecached {
		t.Fatalf("drifting workload never triggered a re-cache (switches=%d, outcome flag=%v)", switches, sawRecached)
	}
	if sec <= 0 {
		t.Errorf("%d switches but zero modeled fill time", switches)
	}
	rep.Inspect(func(s *System) {
		col := s.Scheduler().CacheColumn()
		if col == 0 {
			t.Error("scheduler cache belief still on the boot column after re-caching")
		}
		cached := s.Simulator().Cached()
		if cached == nil || cached.Name() != s.Table().Graphs[col].Name() {
			t.Errorf("simulator cache %v does not match scheduler column %d", cached, col)
		}
	})
}

// TestRecacheDisabledKeepsLegacyBehaviour pins the compatibility
// property: with re-caching disabled (the default), a replica's served
// stream is bit-identical to a plain System serving the same queries —
// the pre-heterogeneity behaviour per seed.
func TestRecacheDisabledKeepsLegacyBehaviour(t *testing.T) {
	plain := newRecacheSystem(t)
	wrapped := NewReplica(0, newRecacheSystem(t))
	qs := drifting(t, plain, 60)
	for _, q := range qs {
		want, err := plain.Serve(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := wrapped.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("query %d diverged: replica %+v vs system %+v", q.ID, got, want)
		}
	}
	if switches, _ := wrapped.RecacheStats(); switches != 0 {
		t.Errorf("re-caching disabled but %d switches recorded", switches)
	}
}

// TestRecacheAdvisorRespectsCooldownAndWindow: no advice before the
// window fills, none during the cooldown.
func TestRecacheAdvisorRespectsCooldownAndWindow(t *testing.T) {
	sys := newRecacheSystem(t)
	rep := NewReplica(0, sys)
	rep.EnableRecache(RecachePolicy{Window: 16, MinGain: 0.01, Cooldown: 50})
	qs := drifting(t, sys, 15) // one short of the window
	for _, q := range qs {
		if _, err := rep.Serve(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if switches, _ := rep.RecacheStats(); switches != 0 {
		t.Fatalf("switched before the window filled (%d switches)", switches)
	}
	// Fill the window and run far enough that only the cooldown can be
	// limiting: at most one switch fits in 120 queries with cooldown 50
	// after the first at >= 16.
	more := drifting(t, sys, 120)
	for _, q := range more {
		if _, err := rep.Serve(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if switches, _ := rep.RecacheStats(); switches > 3 {
		t.Errorf("cooldown 50 allows at most 3 switches in 135 queries, got %d", switches)
	}
}

// TestSystemRecacheValidation covers the mutable-cache primitive's
// error paths.
func TestSystemRecacheValidation(t *testing.T) {
	sys := newRecacheSystem(t)
	if _, err := sys.Recache(-1); err == nil {
		t.Error("negative column accepted")
	}
	if _, err := sys.Recache(sys.Table().Cols()); err == nil {
		t.Error("out-of-range column accepted")
	}
	s, fr := fixtures(t, supernet.MobileNetV3)
	noPB, err := New(s, fr, Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       NoPB,
		Candidates: 4,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noPB.Recache(0); err == nil {
		t.Error("NoPB system accepted a re-cache")
	}
	// A valid switch reports the fill cost of the non-resident cells.
	target := 1
	fill, err := sys.Recache(target)
	if err != nil {
		t.Fatal(err)
	}
	if fill <= 0 {
		t.Errorf("switch from column 0 to %d reported non-positive fill %g", target, fill)
	}
	if got := sys.Scheduler().CacheColumn(); got != target {
		t.Errorf("scheduler column %d after Recache(%d)", got, target)
	}
}

// TestFastestRouterPrefersFasterHardware: with identical queue depths,
// the fastest router must send a query to the replica whose own table
// predicts the lower latency for it.
func TestFastestRouterPrefersFasterHardware(t *testing.T) {
	s, fr := fixtures(t, supernet.MobileNetV3)
	mk := func(cfg accel.Config) *Replica {
		opt := Options{
			Accel:        cfg,
			Policy:       sched.StrictLatency,
			Q:            4,
			Mode:         Full,
			Candidates:   6,
			StaticColumn: 0,
			Seed:         1,
		}
		sys, err := New(s, fr, opt)
		if err != nil {
			t.Fatal(err)
		}
		return NewReplica(0, sys)
	}
	// The two boards genuinely disagree per query (§5.4.2: the derated
	// U50 loses small SubNets, wins large ones), so the router must
	// follow each replica's OWN table: feasible replicas outrank
	// infeasible ones (whose prediction is a best-effort fallback), and
	// within equal feasibility the lower predicted latency wins at equal
	// queue depth.
	zcu, u50 := mk(accel.ZCU104()), mk(accel.AlveoU50())
	reps := []*Replica{u50, zcu}
	router := NewFastest()
	disagree, split := false, false
	// Sweep budgets from infeasible-everywhere through the split region
	// (only one board fits) to loose (the most accurate SubNet wins).
	for budget := 1e-3; budget < 8e-3; budget += 2.5e-4 {
		q := sched.Query{MaxLatency: budget}
		u50Lat, u50OK := u50.predicted(q)
		zcuLat, zcuOK := zcu.predicted(q)
		want := 0
		switch {
		case zcuOK && !u50OK:
			want = 1
		case u50OK && !zcuOK:
			want = 0
		default:
			if zcuLat < u50Lat {
				want = 1
			}
		}
		if got := router.Pick(q, reps); got != want {
			t.Errorf("budget %.2f ms: picked replica %d, want %d (u50 %.4f/feas=%v vs zcu %.4f/feas=%v)",
				budget*1e3, got, want, u50Lat, u50OK, zcuLat, zcuOK)
		}
		if want == 1 {
			disagree = true
		}
		if u50OK != zcuOK {
			split = true
		}
	}
	if !disagree {
		t.Error("fixture never made the ZCU104 the preferred board; sweep lost its point")
	}
	if !split {
		t.Error("fixture never produced a feasibility split; the feasibility-first rule went unexercised")
	}
}
