package serving

import (
	"fmt"

	"sushi/internal/sched"
)

// RecachePolicy configures a replica's cache-management layer: the
// runtime mechanism that makes the Persistent-Buffer SubGraph cache
// mutable beyond Algorithm 1's Q-periodic updates. The layer tracks the
// replica's recently observed query mix and — when a different cached
// SubGraph would have served that window with fewer infeasible queries
// or lower total predicted latency — switches the cache column,
// charging the paper's cache-switch cost (DRAM fill of non-resident
// cells) either to virtual time (simq engine runs) or to the next query
// (live serving with Options.ChargeSwapLatency).
//
// All decisions are pure functions of the observed query sequence and
// the replica's latency table, so runs stay deterministic per seed.
// The zero value selects the defaults noted per field.
type RecachePolicy struct {
	// Window is how many recently served queries the layer replays when
	// scoring candidate cache columns (default 16). Advice is withheld
	// until the window has filled once.
	Window int
	// MinGain is the minimum relative predicted-latency improvement a
	// candidate column must offer over the current one to justify a
	// switch when feasibility is tied, as a fraction in (0, 1) — e.g.
	// 0.05 demands 5% lower total predicted latency. Zero or negative
	// selects the default 0.05 (to accept any improvement, use a tiny
	// positive value); values >= 1 are rejected by deployment validation
	// (no column can cut latency by 100%). A column that makes strictly
	// more window queries feasible wins regardless of MinGain.
	MinGain float64
	// Cooldown is the number of served queries between advisor
	// evaluations (default Window): the window is re-scored at most once
	// per Cooldown queries, which bounds both how often the fleet pays
	// fill traffic and the advisor's own O(Window x columns) replay cost
	// on the serve path.
	Cooldown int
}

// Validate rejects option values the layer would otherwise misread;
// zero values are valid (they select defaults).
func (p RecachePolicy) Validate() error {
	if p.MinGain >= 1 {
		return fmt.Errorf("serving: recache MinGain %g outside (0, 1)", p.MinGain)
	}
	return nil
}

// withDefaults resolves zero-valued fields.
func (p RecachePolicy) withDefaults() RecachePolicy {
	if p.Window <= 0 {
		p.Window = 16
	}
	if p.MinGain <= 0 {
		p.MinGain = 0.05
	}
	if p.Cooldown <= 0 {
		p.Cooldown = p.Window
	}
	return p
}

// recacheState is one replica's cache-management bookkeeping. It is
// owned by the replica and mutated only under the replica lock.
type recacheState struct {
	pol RecachePolicy
	// recent is a ring of the last pol.Window served queries.
	recent       []sched.Query
	next, filled int
	// sinceEval counts observed queries since the advisor last scored
	// the window (whether or not it switched); initialized to Cooldown
	// so the first evaluation needs only a full window.
	sinceEval int
	// switches and switchSec total the enacted re-caches and their
	// modeled fill time in seconds.
	switches  int
	switchSec float64
	// pendingSec is the fill cost of the latest switch, not yet consumed
	// by the simq engine (Replica.TakeRecacheCost).
	pendingSec float64
}

func newRecacheState(pol RecachePolicy) *recacheState {
	pol = pol.withDefaults()
	return &recacheState{
		pol:       pol,
		recent:    make([]sched.Query, pol.Window),
		sinceEval: pol.Cooldown,
	}
}

// observe folds one served query into the window.
func (rc *recacheState) observe(q sched.Query) {
	rc.recent[rc.next] = q
	rc.next = (rc.next + 1) % rc.pol.Window
	if rc.filled < rc.pol.Window {
		rc.filled++
	}
	rc.sinceEval++
}

// windowScore is a candidate column's replay outcome over the window:
// infeasible count first (fewer is better), then total predicted
// latency in seconds.
type windowScore struct {
	infeasible int
	latency    float64
}

// better reports whether s beats o lexicographically: feasibility
// first, then latency.
func (s windowScore) better(o windowScore) bool {
	if s.infeasible != o.infeasible {
		return s.infeasible < o.infeasible
	}
	return s.latency < o.latency
}

// advise replays the observed window against every cache column of the
// system's latency table (sched.Scheduler.PeekAt — pure, no scheduler
// state touched) and returns the column to switch to, if any: the
// best-scoring column when it differs from the current one and either
// serves strictly more window queries feasibly or cuts total predicted
// latency by at least MinGain. A positive limit caps the candidate set
// to columns whose SubGraph fits limit bytes — the tenant's share of a
// partitioned Persistent Buffer; 0 considers every column (the
// single-model behaviour). It runs at most once per Cooldown observed
// queries — the caller resets sinceEval after every full evaluation,
// so a stable workload pays the O(Window x columns) replay once per
// Cooldown, not per query. The caller owns the replica lock.
func (rc *recacheState) advise(sys *System, limit int64) (int, bool) {
	if rc.filled < rc.pol.Window || rc.sinceEval < rc.pol.Cooldown {
		return 0, false
	}
	rc.sinceEval = 0
	schd, tab := sys.Scheduler(), sys.Table()
	if tab.Cols() < 2 || !sys.Simulator().Config().HasPB() {
		return 0, false
	}
	cur := schd.CacheColumn()
	score := func(col int) (windowScore, bool) {
		var s windowScore
		for _, q := range rc.recent[:rc.filled] {
			d, err := schd.PeekAt(q, col)
			if err != nil {
				return s, false
			}
			if !d.Feasible {
				s.infeasible++
			}
			s.latency += d.PredictedLatency
		}
		return s, true
	}
	curScore, ok := score(cur)
	if !ok {
		return 0, false
	}
	bestCol, bestScore := cur, curScore
	for j := 0; j < tab.Cols(); j++ {
		if j == cur {
			continue
		}
		if limit > 0 && tab.Graphs[j].Bytes() > limit {
			continue
		}
		s, ok := score(j)
		if !ok {
			continue
		}
		if s.better(bestScore) {
			bestCol, bestScore = j, s
		}
	}
	if bestCol == cur {
		return 0, false
	}
	if bestScore.infeasible == curScore.infeasible &&
		bestScore.latency > curScore.latency*(1-rc.pol.MinGain) {
		return 0, false
	}
	return bestCol, true
}

// maybeRecache records the served query and, when the advisor finds a
// better column within limit bytes (0 = uncapped), enacts the switch
// through System.Recache. It returns the modeled switch cost in
// seconds and whether a switch happened. The caller owns the replica
// lock.
func (rc *recacheState) maybeRecache(sys *System, q sched.Query, limit int64) (float64, bool) {
	rc.observe(q)
	return rc.adviseAndEnact(sys, limit)
}

// maybeRecacheBatch folds a whole served micro-batch into the window and
// runs the advisor ONCE: a batch flush charges at most one re-cache,
// however many Cooldown boundaries its members span. The caller owns
// the replica lock.
func (rc *recacheState) maybeRecacheBatch(sys *System, qs []sched.Query, limit int64) (float64, bool) {
	for _, q := range qs {
		rc.observe(q)
	}
	return rc.adviseAndEnact(sys, limit)
}

// adviseAndEnact runs the advisor and, on advice, switches the cache.
func (rc *recacheState) adviseAndEnact(sys *System, limit int64) (float64, bool) {
	col, ok := rc.advise(sys, limit)
	if !ok {
		return 0, false
	}
	fill, err := sys.Recache(col)
	if err != nil {
		// A system without a switchable cache (NoPB) simply never
		// switches; advice already filters this, so errors here are
		// defensive.
		return 0, false
	}
	rc.switches++
	rc.switchSec += fill
	return fill, true
}
