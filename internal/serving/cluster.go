package serving

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sushi/internal/sched"
)

// Cluster dispatches queries across N replica systems — each with its
// own simulated SushiAccel and Persistent Buffer — behind a pluggable
// Router. This is the "naturally integrated in state-of-the-art ML
// inference serving frameworks" direction of the paper's conclusion:
// queries route across replicas (round-robin, least-loaded, SubGraph
// affinity), replicas serve in parallel, and per-replica accumulators
// aggregate without a global lock.
type Cluster struct {
	reps   []*Replica
	router Router
	// mu serializes routing decisions (router state + reservation).
	mu sync.Mutex
	// batch is the live micro-batching policy; batchers (one per
	// replica, non-nil only while batching is enabled) group concurrent
	// Serve calls into shared accelerator passes.
	batch    BatchPolicy
	batchers []*liveBatcher
}

// NewCluster builds a single-model cluster over the given systems. A
// nil router defaults to round-robin.
func NewCluster(systems []*System, router Router) (*Cluster, error) {
	if len(systems) == 0 {
		return nil, fmt.Errorf("serving: cluster needs at least one replica")
	}
	reps := make([]*Replica, len(systems))
	for i, sys := range systems {
		if sys == nil {
			return nil, fmt.Errorf("serving: nil system for replica %d", i)
		}
		reps[i] = NewReplica(i, sys)
	}
	return NewClusterFromReplicas(reps, router)
}

// NewClusterFromReplicas builds a cluster over pre-constructed replicas
// — the multi-tenant entry point (core.DeployCluster assembles one
// multi-model Replica per fleet slot and wires them here). Every
// replica must host the same model set, in the same tenant order, so
// routing and model normalization agree fleet-wide. A nil router
// defaults to round-robin.
func NewClusterFromReplicas(reps []*Replica, router Router) (*Cluster, error) {
	if len(reps) == 0 {
		return nil, fmt.Errorf("serving: cluster needs at least one replica")
	}
	if router == nil {
		router = NewRoundRobin()
	}
	for i, rep := range reps {
		if rep == nil {
			return nil, fmt.Errorf("serving: nil replica %d", i)
		}
	}
	models := reps[0].Models()
	for i, rep := range reps {
		got := rep.Models()
		if len(got) != len(models) {
			return nil, fmt.Errorf("serving: replica %d hosts %v, replica 0 hosts %v", i, got, models)
		}
		for j := range got {
			if got[j] != models[j] {
				return nil, fmt.Errorf("serving: replica %d hosts %v, replica 0 hosts %v", i, got, models)
			}
		}
	}
	return &Cluster{reps: reps, router: router}, nil
}

// Models lists the cluster's co-hosted model ids in tenant order (a
// single [""] for single-model deployments).
func (c *Cluster) Models() []string { return c.reps[0].Models() }

// normalize resolves a query's model id to the fleet's canonical form
// ("" stays "" on single-model clusters) or rejects an unknown model
// with a typed UnknownModelError — before routing, so model-aware
// routers always score the right tenant.
func (c *Cluster) normalize(q sched.Query) (sched.Query, error) {
	m, ok := c.reps[0].CanonicalModel(q.Model)
	if !ok {
		return q, &UnknownModelError{Model: q.Model, Have: c.reps[0].Models()}
	}
	q.Model = m
	return q, nil
}

// EnableBatching turns on live-path micro-batching with the given
// policy: concurrent Serve calls routed to the same replica within the
// policy's window are grouped — by the SubNet they would be served —
// into one batched accelerator pass that fetches the shared weights
// once. Call before serving begins (it is not synchronized with
// in-flight dispatch); a non-Enabled policy switches batching off.
func (c *Cluster) EnableBatching(pol BatchPolicy) error {
	if err := pol.Validate(); err != nil {
		return err
	}
	c.batch = pol
	if !pol.Enabled() {
		c.batchers = nil
		return nil
	}
	c.batchers = make([]*liveBatcher, len(c.reps))
	for i, rep := range c.reps {
		c.batchers[i] = newLiveBatcher(rep, pol)
	}
	return nil
}

// BatchPolicy returns the live micro-batching policy (zero value when
// batching is off).
func (c *Cluster) BatchPolicy() BatchPolicy { return c.batch }

// Replicas exposes the cluster members (for views and direct serving).
func (c *Cluster) Replicas() []*Replica { return c.reps }

// Size returns the replica count.
func (c *Cluster) Size() int { return len(c.reps) }

// RouterName identifies the dispatch policy.
func (c *Cluster) RouterName() string { return c.router.Name() }

// route picks and reserves a replica for q.
func (c *Cluster) route(q sched.Query) *Replica {
	c.mu.Lock()
	defer c.mu.Unlock()
	i := c.router.Pick(q, c.reps)
	if i < 0 || i >= len(c.reps) {
		i = 0
	}
	rep := c.reps[i]
	rep.reserve()
	return rep
}

// Serve routes one query to a replica and serves it there. With
// micro-batching enabled (EnableBatching), the query first passes the
// replica's batch former: concurrent callers landing on the same
// replica within the batching window share one accelerator pass when
// they resolve to the same SubNet. Context deadlines tighten the
// latency budget at submit time (the ServeContext convention) and
// cancellation abandons the wait — the batch former then skips the
// query at flush.
func (c *Cluster) Serve(ctx context.Context, q sched.Query) (Served, error) {
	q, err := c.normalize(q)
	if err != nil {
		return Served{}, err
	}
	rep := c.route(q)
	if c.batchers == nil {
		return rep.serve(ctx, q)
	}
	if err := ctx.Err(); err != nil {
		rep.done()
		return Served{}, err
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl).Seconds()
		if remain <= 0 {
			rep.done()
			return Served{}, context.DeadlineExceeded
		}
		if q.MaxLatency <= 0 || remain < q.MaxLatency {
			q.MaxLatency = remain
		}
	}
	p := c.batchers[rep.ID()].submit(q)
	select {
	case out := <-p.done:
		return out.res, out.err
	case <-ctx.Done():
		// The flusher observes the cancellation and releases the
		// reservation; if the flush already started, the result is
		// simply discarded (done is buffered).
		close(p.cancelled)
		return Served{}, ctx.Err()
	}
}

// ServeAll serves a closed-loop stream across the cluster: every query
// is routed up front (in stream order, so routing is deterministic for
// a deterministic router), then each replica serves its share in
// submission order while replicas run in parallel. Results align with
// qs by index. The first error (or cancellation) aborts the batch:
// remaining queries are not served — no accelerator state mutates for
// work the caller will discard — and their result slots stay zero.
func (c *Cluster) ServeAll(ctx context.Context, qs []sched.Query) ([]Served, error) {
	type item struct {
		idx int
		q   sched.Query
	}
	// Validate (and normalize) the whole batch before any query executes
	// — no accelerator state mutates for work the caller will discard.
	normalized := make([]sched.Query, len(qs))
	for i, q := range qs {
		nq, err := c.normalize(q)
		if err != nil {
			return make([]Served, len(qs)), err
		}
		normalized[i] = nq
	}
	qs = normalized
	groups := make([][]item, len(c.reps))
	c.mu.Lock()
	for i, q := range qs {
		ri := c.router.Pick(q, c.reps)
		if ri < 0 || ri >= len(c.reps) {
			ri = 0
		}
		c.reps[ri].reserve()
		groups[ri] = append(groups[ri], item{i, q})
	}
	c.mu.Unlock()

	out := make([]Served, len(qs))
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
		failed  atomic.Bool
	)
	record := func(err error) {
		errOnce.Do(func() { firstEr = err })
		failed.Store(true)
	}
	for ri, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(rep *Replica, g []item) {
			defer wg.Done()
			for _, it := range g {
				if failed.Load() {
					rep.done()
					continue
				}
				if err := ctx.Err(); err != nil {
					rep.done()
					record(err)
					continue
				}
				res, err := rep.serve(ctx, it.q)
				if err != nil {
					record(err)
					continue
				}
				out[it.idx] = res
			}
		}(c.reps[ri], g)
	}
	wg.Wait()
	return out, firstEr
}

// Result is one open-loop outcome: the served record, the replica that
// produced it and any per-query error (a cancelled dispatch surfaces as
// the context's error).
type Result struct {
	Served  Served
	Replica int
	Err     error
}

// ServeStream serves an open-loop stream: queries arriving on in are
// routed as they arrive and served concurrently across replicas (FIFO
// within a replica). The result channel closes once in closes (or ctx
// is cancelled) and every in-flight query has drained — workers never
// leak. Consumers must drain the returned channel.
func (c *Cluster) ServeStream(ctx context.Context, in <-chan sched.Query) <-chan Result {
	out := make(chan Result)
	queues := make([]chan sched.Query, len(c.reps))
	var wg sync.WaitGroup
	for i := range c.reps {
		queues[i] = make(chan sched.Query, 16)
		wg.Add(1)
		go func(rep *Replica, queue <-chan sched.Query) {
			defer wg.Done()
			for q := range queue {
				res, err := rep.serve(ctx, q)
				select {
				case out <- Result{Served: res, Replica: rep.ID(), Err: err}:
				case <-ctx.Done():
					// Consumer is gone with the context; drop the result
					// and keep draining reservations.
				}
			}
		}(c.reps[i], queues[i])
	}
	go func() {
		defer func() {
			for _, q := range queues {
				close(q)
			}
		}()
		for {
			select {
			case <-ctx.Done():
				return
			case q, ok := <-in:
				if !ok {
					return
				}
				nq, err := c.normalize(q)
				if err != nil {
					// An unknown model is a per-query failure on the open
					// stream: report it and keep serving the rest.
					select {
					case out <- Result{Err: err, Replica: -1}:
					case <-ctx.Done():
						return
					}
					continue
				}
				q = nq
				rep := c.route(q)
				select {
				case queues[rep.ID()] <- q:
				case <-ctx.Done():
					rep.done()
					return
				}
			}
		}
	}()
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Stats folds every replica's accumulator into one cluster summary.
// There is no global serving lock to contend on: each replica snapshot
// takes only that replica's lock, and the fold happens on the reader.
func (c *Cluster) Stats() Summary {
	var m Accumulator
	for _, rep := range c.reps {
		m.Merge(rep.snapshot())
	}
	return m.Summary()
}
