package serving

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"sushi/internal/sched"
	"sushi/internal/supernet"
)

// strictLatencyDegrade is the shared per-query policy override for
// admission control's degrade-to-fastest escape valve. Schedulers only
// read through Query.Policy, so every degraded query can alias this one
// value instead of heap-allocating a policy per serve.
var strictLatencyDegrade = sched.StrictLatency

// UnknownModelError is the typed rejection for a query naming a model
// the deployment does not host; the HTTP surface maps it to 400.
type UnknownModelError struct {
	// Model is the rejected model id.
	Model string
	// Have lists the models the deployment hosts.
	Have []string
}

// Error implements error.
func (e *UnknownModelError) Error() string {
	return fmt.Sprintf("serving: unknown model %q (deployment hosts %v)", e.Model, e.Have)
}

// Tenant pairs a model id with its serving stack — one entry of a
// multi-tenant replica. The first tenant is the replica's default
// model (queries with an empty Model resolve to it).
type Tenant struct {
	// Model is the tenant's model id ("resnet50", ...). Single-model
	// replicas use "" — the pre-multi-tenant behaviour.
	Model string
	// Sys is the tenant's vertically integrated serving stack: its own
	// scheduler, latency table and simulated accelerator state.
	Sys *System
}

// tenant is one model's slice of a replica: the per-model System (its
// own sched.Scheduler and latency-table family), the atomically
// published cache snapshot routers score against, the per-model
// cache-management layer, and the tenant's share of the replica's
// shared Persistent Buffer.
type tenant struct {
	model string
	sys   *System
	// cache is the tenant's last published cache state, read lock-free
	// by routers and batch formers. Guarded for writes by the replica
	// lock.
	cache atomic.Pointer[cacheSnapshot]
	// rec is the tenant's cache-management layer (nil = disabled).
	// Guarded by the replica lock.
	rec *recacheState
	// shareBytes is the tenant's current share of the replica's
	// Persistent Buffer in bytes (0 = uncapped: the whole PB, the
	// single-model behaviour). The cache-management layer and the
	// partitioner only consider cache columns that fit the share.
	// Guarded by the replica lock.
	shareBytes int64
	// windowQueries counts queries served since the partitioner's last
	// rebalance — the traffic signal shares are re-weighted by.
	windowQueries int
}

// Replica is one cluster member: one System per co-hosted model (each
// with its own scheduler and latency-table family, behind ONE shared
// simulated accelerator whose Persistent Buffer the tenants partition)
// made safe for concurrent callers. Queries on one replica serialize
// through its mutex — exactly as a query stream serializes onto one
// physical accelerator — while different replicas serve in parallel.
type Replica struct {
	id int
	// tenants holds the co-hosted models in deployment order; entry 0
	// is the default model. Immutable after construction, so model
	// resolution is lock-free.
	tenants []*tenant
	byModel map[string]*tenant
	// mu owns every tenant's mutable state (scheduler, simulator,
	// recache window, PB shares) and acc.
	mu  sync.Mutex
	acc Accumulator
	// depth counts routed-but-unfinished queries (queued + in flight).
	depth atomic.Int64
	// life is the replica's elastic-fleet admission state (see
	// lifecycle.go); zero value Active.
	life atomic.Int32
	// part is the shared-PB cache partitioner (nil = static split or
	// single model). Guarded by mu.
	part *partitionState
}

// cacheSnapshot is an immutable view of a tenant's cache state: the
// scheduler's believed column and the SubGraph slice of the PB it owns.
type cacheSnapshot struct {
	col   int
	graph *supernet.SubGraph
	// overlaps caches, per table row, Overlap(SubNets[row].Graph, graph)
	// — the affinity router's (model SubNet → score) table, derived once
	// per published snapshot instead of per pick. Materialized lazily on
	// the first affinity score after publication; the values are a pure
	// function of the snapshot, so concurrent initializers store
	// identical arrays and the pointer swap stays lock-free.
	overlaps atomic.Pointer[[]float64]
}

// NewReplica wraps a single-model system as cluster member id — the
// pre-multi-tenant constructor, byte-for-byte equivalent to a
// one-tenant NewMultiReplica with model "".
func NewReplica(id int, sys *System) *Replica {
	r, err := NewMultiReplica(id, []Tenant{{Model: "", Sys: sys}})
	if err != nil {
		// A single non-nil system cannot fail validation; keep the old
		// non-erroring signature.
		panic(err)
	}
	return r
}

// NewMultiReplica wraps one System per co-hosted model as cluster
// member id. Tenant 0 is the default model (empty Query.Model resolves
// to it); model ids must be unique.
func NewMultiReplica(id int, tenants []Tenant) (*Replica, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("serving: replica %d needs at least one tenant", id)
	}
	r := &Replica{
		id:      id,
		tenants: make([]*tenant, len(tenants)),
		byModel: make(map[string]*tenant, len(tenants)),
	}
	for i, tn := range tenants {
		if tn.Sys == nil {
			return nil, fmt.Errorf("serving: replica %d: nil system for model %q", id, tn.Model)
		}
		if tn.Model == "" && len(tenants) > 1 {
			return nil, fmt.Errorf("serving: replica %d: multi-tenant replicas need named models", id)
		}
		if _, dup := r.byModel[tn.Model]; dup {
			return nil, fmt.Errorf("serving: replica %d: duplicate model %q", id, tn.Model)
		}
		t := &tenant{model: tn.Model, sys: tn.Sys}
		r.tenants[i] = t
		r.byModel[tn.Model] = t
		r.publishCache(t)
	}
	return r, nil
}

// tenantFor resolves a model id ("" = the default tenant). Lock-free:
// the tenant set is immutable after construction.
func (r *Replica) tenantFor(model string) (*tenant, error) {
	if model == "" {
		return r.tenants[0], nil
	}
	if t, ok := r.byModel[model]; ok {
		return t, nil
	}
	return nil, &UnknownModelError{Model: model, Have: r.Models()}
}

// CanonicalModel resolves a query's model id to the tenant's canonical
// name ("" stays "" on single-model replicas — the default tenant's
// id). The second result reports whether the model is hosted at all.
func (r *Replica) CanonicalModel(model string) (string, bool) {
	t, err := r.tenantFor(model)
	if err != nil {
		return "", false
	}
	return t.model, true
}

// Models lists the co-hosted model ids in tenant order (a single
// [""] for single-model replicas).
func (r *Replica) Models() []string {
	out := make([]string, len(r.tenants))
	for i, t := range r.tenants {
		out[i] = t.model
	}
	return out
}

// publishCache snapshots a tenant's current cache state for lock-free
// readers. Callers own the replica lock (or exclusive access at
// construction).
func (r *Replica) publishCache(t *tenant) {
	t.cache.Store(&cacheSnapshot{
		col:   t.sys.Scheduler().CacheColumn(),
		graph: t.sys.Simulator().Cached(),
	})
}

// AffinityScore is the overlap (||SN ∩ G||² / ||SN||²) between the
// SubNet the query's model-tenant would serve for q — evaluated
// against its last published cache state — and the SubGraph slice its
// Persistent Buffer share holds. Lock-free: it reads the atomic
// snapshot and the tenant scheduler's immutable table only, so routers
// may call it while the replica is serving.
func (r *Replica) AffinityScore(q sched.Query) float64 {
	t, err := r.tenantFor(q.Model)
	if err != nil {
		return -1
	}
	snap := t.cache.Load()
	if snap == nil || snap.graph == nil {
		return 0
	}
	d, err := t.sys.Scheduler().PeekAt(q, snap.col)
	if err != nil {
		return -1
	}
	return overlapFor(t, snap, d.SubNet)
}

// overlapFor reads the snapshot's cached per-row overlap score,
// materializing the whole (row → score) array on the first read after
// publication. The slow-path oracle recomputes the overlap per call —
// the original implementation the cached scores must match exactly.
func overlapFor(t *tenant, snap *cacheSnapshot, row int) float64 {
	if t.sys.opt.SlowPath {
		return supernet.Overlap(t.sys.Table().SubNets[row].Graph, snap.graph)
	}
	if p := snap.overlaps.Load(); p != nil {
		return (*p)[row]
	}
	tab := t.sys.Table()
	ov := make([]float64, tab.Rows())
	for i := range ov {
		ov[i] = supernet.Overlap(tab.SubNets[i].Graph, snap.graph)
	}
	snap.overlaps.Store(&ov)
	return ov[row]
}

// PredictedLatency is the service latency (seconds) the query's
// model-tenant's own latency table predicts for q under its last
// published cache column — the hardware- and model-aware routing
// signal: heterogeneous fleets have one table per (model, hardware)
// pair, so the same query scores differently per replica AND per
// model. Lock-free like AffinityScore; returns +Inf when the query
// cannot be scheduled at all (including an unknown model).
func (r *Replica) PredictedLatency(q sched.Query) float64 {
	lat, _ := r.predicted(q)
	return lat
}

// predicted returns the lock-free latency prediction together with the
// scheduler's feasibility verdict for it. Routers need both: an
// infeasible replica's fallback is often its FASTEST SubNet (strict-
// latency fallback is argmin latency), so scoring by latency alone
// would systematically attract queries to replicas that cannot honour
// their constraints.
func (r *Replica) predicted(q sched.Query) (float64, bool) {
	t, err := r.tenantFor(q.Model)
	if err != nil {
		return math.Inf(1), false
	}
	snap := t.cache.Load()
	if snap == nil {
		return math.Inf(1), false
	}
	d, err := t.sys.Scheduler().PeekAt(q, snap.col)
	if err != nil {
		return math.Inf(1), false
	}
	return d.PredictedLatency, d.Feasible
}

// ScheduledSubNet is the batch former's compatibility key: the table
// row the query's model-tenant scheduler would serve for q against its
// last published cache column (-1 when q cannot be scheduled at all).
// Queries that resolve to the same (model, row) pair can share one
// batched accelerator pass — they read the same weights. Lock-free
// like AffinityScore, so batch formers may call it while the replica
// serves.
func (r *Replica) ScheduledSubNet(q sched.Query) int {
	t, err := r.tenantFor(q.Model)
	if err != nil {
		return -1
	}
	snap := t.cache.Load()
	if snap == nil {
		return -1
	}
	d, err := t.sys.Scheduler().PeekAt(q, snap.col)
	if err != nil {
		return -1
	}
	return d.SubNet
}

// EnableRecache turns on the cache-management layer for every tenant
// with the given policy (zero-valued fields select defaults): each
// tenant starts tracking its served query mix and re-caches when a
// different cache column — within its PB share — would have served the
// recent window better. Call before serving begins; enabling
// mid-stream discards no state but the windows start empty.
func (r *Replica) EnableRecache(pol RecachePolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tenants {
		t.rec = newRecacheState(pol)
	}
}

// EnablePartition arms the shared-PB cache partitioner over the
// replica's tenants: the Persistent Buffer (pbBytes capacity) is
// divided into 2M half-slots for M tenants, every tenant starts at the
// static split of 2 half-slots (PB/M), and — under the traffic-
// weighted policy — shares are re-apportioned to the observed
// per-model traffic every pol.Window served queries, a hot model
// stealing half-slots from a cold one. Shrunk tenants are forced onto
// a cache column that fits (System.Recache, the switch cost charged
// exactly like a window-driven re-cache); grown tenants take the
// largest column their new share admits. Call before serving begins;
// single-tenant replicas reject the call (nothing to partition).
func (r *Replica) EnablePartition(pol PartitionPolicy, pbBytes int64) error {
	if len(r.tenants) < 2 {
		return fmt.Errorf("serving: partitioning needs at least two tenants (have %d)", len(r.tenants))
	}
	if err := pol.Validate(); err != nil {
		return err
	}
	if pbBytes <= 0 {
		return fmt.Errorf("serving: partitioning needs a Persistent Buffer (PB bytes %d)", pbBytes)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.part = newPartitionState(pol, pbBytes, len(r.tenants))
	for _, t := range r.tenants {
		t.shareBytes = 2 * r.part.halfSlot
		// Algorithm 1's own Q-periodic updates must respect the share too.
		t.sys.Scheduler().SetCacheBudget(t.shareBytes)
	}
	return nil
}

// PartitionShares reports each tenant's current PB share in bytes, in
// tenant order (nil while partitioning is off).
func (r *Replica) PartitionShares() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.part == nil {
		return nil
	}
	out := make(map[string]int64, len(r.tenants))
	for _, t := range r.tenants {
		out[t.model] = t.shareBytes
	}
	return out
}

// PartitionStats reports the partitioner's enacted share-driven cache
// switches and their total modeled fill time in seconds (0, 0 while
// partitioning is off or static).
func (r *Replica) PartitionStats() (switches int, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.part == nil {
		return 0, 0
	}
	return r.part.switches, r.part.switchSec
}

// RecacheStats reports the window-driven cache switches enacted so far
// — the per-tenant cache-management layer plus the partitioner — and
// their total modeled fill time in seconds (0, 0 while both are
// disabled).
func (r *Replica) RecacheStats() (switches int, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tenants {
		if t.rec != nil {
			switches += t.rec.switches
			seconds += t.rec.switchSec
		}
	}
	if r.part != nil {
		switches += r.part.switches
		seconds += r.part.switchSec
	}
	return switches, seconds
}

// TakeRecacheCost consumes the virtual-time cost (seconds) of every
// cache switch enacted by the most recent ServeVirtual — tenant
// re-caches plus partition rebalances — or 0. The simq engine calls it
// after each virtual service to extend the replica's busy interval:
// the switches occupy the accelerator without serving.
func (r *Replica) TakeRecacheCost() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var c float64
	for _, t := range r.tenants {
		if t.rec != nil {
			c += t.rec.pendingSec
			t.rec.pendingSec = 0
		}
	}
	if r.part != nil {
		c += r.part.pendingSec
		r.part.pendingSec = 0
	}
	return c
}

// ID returns the replica's index within its cluster.
func (r *Replica) ID() int { return r.id }

// QueueDepth reports the number of queries routed to this replica that
// have not finished (queued plus in flight).
func (r *Replica) QueueDepth() int { return int(r.depth.Load()) }

// MinServiceLatency is the shortest single-query service time this
// replica can possibly produce — the minimum over its tenants of the
// latency table's global minimum (seconds). The simq engine's sharded
// mode sizes its conservative virtual-time windows from the fleet
// minimum: no event chain can propagate between replicas faster than
// one service. The table is immutable after build, so no lock is
// needed.
func (r *Replica) MinServiceLatency() float64 {
	min := math.Inf(1)
	for _, t := range r.tenants {
		if l := t.sys.Table().GlobalMinLatency(); l < min {
			min = l
		}
	}
	return min
}

// Queries reports how many queries this replica has served.
func (r *Replica) Queries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acc.Queries()
}

// Summary folds this replica's served stream (per-model slices under
// Summary.PerModel on multi-tenant replicas).
func (r *Replica) Summary() Summary {
	return r.snapshot().Summary()
}

// snapshot copies the accumulator under the replica lock.
func (r *Replica) snapshot() *Accumulator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acc.Snapshot()
}

// Inspect runs f with exclusive access to the replica's DEFAULT
// tenant's system, for read-only views of scheduler/simulator state.
// Multi-tenant callers use InspectTenants. f must not retain the
// system past the call.
func (r *Replica) Inspect(f func(*System)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(r.tenants[0].sys)
}

// InspectTenants runs f once per tenant, in tenant order, with
// exclusive access to each tenant's system and current PB share — the
// multi-tenant view hook. f must not retain the systems past the call.
func (r *Replica) InspectTenants(f func(model string, shareBytes int64, sys *System)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tenants {
		f(t.model, t.shareBytes, t.sys)
	}
}

// reserve marks one routed query; serve's completion releases it.
// Routers read QueueDepth, so reservation happens at routing time.
func (r *Replica) reserve() { r.depth.Add(1) }

// done releases a reservation without serving (cancelled dispatch).
func (r *Replica) done() { r.depth.Add(-1) }

// observeTenant folds one served query into the tenant's cache window
// and the partitioner's traffic counters, enacting any advised
// switches. Live-path convention: switch costs charge the next query
// via chargeSwap. Returns whether the tenant's own advisor switched.
// The caller owns the replica lock.
func (r *Replica) observeTenant(t *tenant, offered sched.Query) bool {
	switched := false
	if t.rec != nil {
		if cost, sw := t.rec.maybeRecache(t.sys, offered, t.shareBytes); sw {
			switched = true
			t.sys.chargeSwap(cost)
		}
	}
	if r.part != nil {
		t.windowQueries++
		r.part.maybeRebalance(r, func(tn *tenant, cost float64) {
			tn.sys.chargeSwap(cost)
		})
	}
	return switched
}

// observeTenantVirtual is observeTenant for the simq engine: switch
// costs accumulate as pending virtual-time busy seconds consumed by
// TakeRecacheCost. The caller owns the replica lock.
func (r *Replica) observeTenantVirtual(t *tenant, offered sched.Query) bool {
	switched := false
	if t.rec != nil {
		if cost, sw := t.rec.maybeRecache(t.sys, offered, t.shareBytes); sw {
			switched = true
			t.rec.pendingSec += cost
		}
	}
	if r.part != nil {
		t.windowQueries++
		r.part.maybeRebalance(r, func(_ *tenant, cost float64) {
			r.part.pendingSec += cost
		})
	}
	return switched
}

// serve runs one reserved query: it serializes on the replica lock,
// serves through the context-aware path of the query's model-tenant
// and folds the outcome into the replica accumulator. The reservation
// is released on every path.
func (r *Replica) serve(ctx context.Context, q sched.Query) (Served, error) {
	defer r.depth.Add(-1)
	if err := ctx.Err(); err != nil {
		return Served{}, err
	}
	t, err := r.tenantFor(q.Model)
	if err != nil {
		return Served{}, err
	}
	q.Model = t.model
	r.mu.Lock()
	defer r.mu.Unlock()
	res, err := t.sys.ServeContext(ctx, q)
	if err != nil {
		return Served{}, err
	}
	if r.observeTenant(t, q) {
		res.Recached = true
	}
	r.acc.Add(res)
	if res.CacheSwapped || res.Recached {
		r.publishCache(t)
	}
	return res, nil
}

// Serve runs one query directly on this replica (bypassing any router).
func (r *Replica) Serve(ctx context.Context, q sched.Query) (Served, error) {
	r.reserve()
	return r.serve(ctx, q)
}

// serveReserved serves one already-reserved query without a context —
// the live batcher's solo path (deadline tightening happened at submit
// time, before the query entered the batch former). It counts as a
// flush of one toward the batch-occupancy stats.
func (r *Replica) serveReserved(q sched.Query) (Served, error) {
	defer r.depth.Add(-1)
	t, err := r.tenantFor(q.Model)
	if err != nil {
		return Served{}, err
	}
	q.Model = t.model
	r.mu.Lock()
	defer r.mu.Unlock()
	res, err := t.sys.Serve(q)
	if err != nil {
		return Served{}, err
	}
	if r.observeTenant(t, q) {
		res.Recached = true
	}
	r.acc.Add(res)
	r.acc.ObserveBatch(1)
	if res.CacheSwapped || res.Recached {
		r.publishCache(t)
	}
	return res, nil
}

// serveBatchReserved serves one already-reserved micro-batch on the
// live path: one ServeBatch pass on the batch's model-tenant under the
// replica lock (the former never mixes models), at most one
// window-driven re-cache after it (cost charged to the next query
// under ChargeSwapLatency, the closed-loop convention), per-member
// outcomes folded into the accumulator plus one batch-occupancy
// observation.
func (r *Replica) serveBatchReserved(qs []sched.Query) ([]Served, error) {
	defer r.depth.Add(-int64(len(qs)))
	t, err := r.tenantFor(qs[0].Model)
	if err != nil {
		return nil, err
	}
	normalized := make([]sched.Query, len(qs))
	for i, q := range qs {
		q.Model = t.model
		normalized[i] = q
	}
	qs = normalized
	r.mu.Lock()
	defer r.mu.Unlock()
	rs, err := t.sys.ServeBatch(qs)
	if err != nil {
		return nil, err
	}
	recached := false
	if t.rec != nil {
		if cost, switched := t.rec.maybeRecacheBatch(t.sys, qs, t.shareBytes); switched {
			recached = true
			rs[len(rs)-1].Recached = true
			t.sys.chargeSwap(cost)
		}
	}
	if r.part != nil {
		t.windowQueries += len(qs)
		r.part.maybeRebalance(r, func(tn *tenant, cost float64) {
			tn.sys.chargeSwap(cost)
		})
	}
	for _, res := range rs {
		r.acc.Add(res)
	}
	r.acc.ObserveBatch(len(qs))
	if recached || rs[len(rs)-1].CacheSwapped {
		r.publishCache(t)
	}
	return rs, nil
}

// Reserve marks one routed-but-unfinished query against the replica's
// queue depth; Release undoes it. The simq engine uses the pair to
// expose *virtual* queue depth to routers while it serializes service
// in virtual time — the same depth live dispatch maintains, so every
// Router implementation works unchanged against simulated load.
func (r *Replica) Reserve() { r.reserve() }

// Release drops one reservation (completed, dropped or shed in virtual
// time).
func (r *Replica) Release() { r.done() }

// ServeVirtual serves one query at a virtual instant on behalf of the
// simq engine: it serializes on the replica lock and publishes cache
// state like the live path, but leaves queue-depth and accumulator
// bookkeeping to the caller — the engine owns virtual time, so it alone
// knows the query's queueing telemetry. offered is the query as it
// arrived, before load-aware budget debiting: the cache-management
// layer observes it so re-caching chases the workload's (A_t, L_t)
// drift, not transient queue-induced budget erosion or degrade
// rewrites. With degrade set, the query is served by the fastest
// SubNet reachable under ITS OWN MODEL's current cache column
// (admission control's degrade-to-fastest escape valve resolves the
// budget against the query's own latency table): accuracy floor
// dropped, budget collapsed to that column's minimum latency under a
// per-query StrictLatency override.
func (r *Replica) ServeVirtual(q, offered sched.Query, degrade bool) (Served, error) {
	t, err := r.tenantFor(q.Model)
	if err != nil {
		return Served{}, err
	}
	q.Model, offered.Model = t.model, t.model
	r.mu.Lock()
	defer r.mu.Unlock()
	if degrade {
		q.MinAccuracy = 0
		q.MaxLatency = t.sys.fastestBudget()
		q.Policy = &strictLatencyDegrade
	}
	res, err := t.sys.Serve(q)
	if err != nil {
		return Served{}, err
	}
	if r.observeTenantVirtual(t, offered) {
		res.Recached = true
	}
	if res.CacheSwapped || res.Recached {
		r.publishCache(t)
	}
	return res, nil
}

// ServeBatchVirtual serves one micro-batch at a virtual instant on
// behalf of the simq engine — the batched counterpart of ServeVirtual:
// one accelerator pass through the batch's model-tenant (the engine's
// batch former keys on the model, so a flush never mixes models),
// queue-depth and accumulator bookkeeping left to the caller. offered
// carries the queries as they arrived (before load-aware debiting and
// degrade rewrites) for the cache-management layer's window; a flush
// charges AT MOST ONE re-cache — the advisor runs once, after the
// whole batch. With degrade set, every member is served by the fastest
// SubNet reachable under its model's current cache column.
func (r *Replica) ServeBatchVirtual(qs, offered []sched.Query, degrade bool) ([]Served, error) {
	nq := append([]sched.Query(nil), qs...)
	no := append([]sched.Query(nil), offered...)
	out := make([]Served, len(qs))
	if err := r.ServeBatchVirtualInto(nq, no, degrade, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ServeBatchVirtualInto is ServeBatchVirtual with caller-owned scratch:
// qs and offered are normalized (and, under degrade, rewritten) IN
// PLACE, and the per-member outcomes land in out (len(out) must equal
// len(qs)). The simq engine reuses one set of buffers across every
// flush, which is what makes the steady-state serve path allocation
// free; callers that need their query slices preserved must copy first
// (ServeBatchVirtual does exactly that).
func (r *Replica) ServeBatchVirtualInto(qs, offered []sched.Query, degrade bool, out []Served) error {
	t, err := r.tenantFor(qs[0].Model)
	if err != nil {
		return err
	}
	for i := range qs {
		qs[i].Model = t.model
	}
	for i := range offered {
		offered[i].Model = t.model
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if degrade {
		budget := t.sys.fastestBudget()
		for i := range qs {
			qs[i].MinAccuracy = 0
			qs[i].MaxLatency = budget
			qs[i].Policy = &strictLatencyDegrade
		}
	}
	if err := t.sys.ServeBatchInto(qs, out); err != nil {
		return err
	}
	recached := false
	if t.rec != nil {
		if cost, switched := t.rec.maybeRecacheBatch(t.sys, offered, t.shareBytes); switched {
			recached = true
			// Marked on the last member, mirroring the CacheSwapped
			// convention: the switch follows the batch.
			out[len(out)-1].Recached = true
			t.rec.pendingSec += cost
		}
	}
	if r.part != nil {
		t.windowQueries += len(qs)
		r.part.maybeRebalance(r, func(_ *tenant, cost float64) {
			r.part.pendingSec += cost
		})
	}
	if recached || out[len(out)-1].CacheSwapped {
		r.publishCache(t)
	}
	return nil
}
