package serving

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"sushi/internal/sched"
	"sushi/internal/supernet"
)

// Replica is one cluster member: a System (its own simulated SushiAccel
// and Persistent Buffer) made safe for concurrent callers. Queries on
// one replica serialize through its mutex — exactly as a query stream
// serializes onto one physical accelerator — while different replicas
// serve in parallel.
type Replica struct {
	id  int
	sys *System
	// mu owns sys (scheduler, simulator) and acc.
	mu  sync.Mutex
	acc Accumulator
	// depth counts routed-but-unfinished queries (queued + in flight).
	depth atomic.Int64
	// cache is the replica's last published cache state, read lock-free
	// by affinity routing so dispatch never blocks on in-flight serves.
	cache atomic.Pointer[cacheSnapshot]
	// rec is the cache-management layer (nil = re-caching disabled, the
	// fixed-cache behaviour of earlier revisions). Guarded by mu.
	rec *recacheState
}

// cacheSnapshot is an immutable view of a replica's cache state: the
// scheduler's believed column and the SubGraph the PB holds.
type cacheSnapshot struct {
	col   int
	graph *supernet.SubGraph
}

// NewReplica wraps a system as cluster member id.
func NewReplica(id int, sys *System) *Replica {
	r := &Replica{id: id, sys: sys}
	r.publishCache()
	return r
}

// publishCache snapshots the current cache state for lock-free readers.
// Callers own the replica lock (or exclusive access at construction).
func (r *Replica) publishCache() {
	r.cache.Store(&cacheSnapshot{
		col:   r.sys.Scheduler().CacheColumn(),
		graph: r.sys.Simulator().Cached(),
	})
}

// AffinityScore is the overlap (||SN ∩ G||² / ||SN||²) between the
// SubNet this replica would serve for q — evaluated against its last
// published cache state — and the SubGraph its Persistent Buffer holds.
// Lock-free: it reads the atomic snapshot and the scheduler's immutable
// table only, so routers may call it while the replica is serving.
func (r *Replica) AffinityScore(q sched.Query) float64 {
	snap := r.cache.Load()
	if snap == nil || snap.graph == nil {
		return 0
	}
	d, err := r.sys.Scheduler().PeekAt(q, snap.col)
	if err != nil {
		return -1
	}
	return supernet.Overlap(r.sys.Table().SubNets[d.SubNet].Graph, snap.graph)
}

// PredictedLatency is the service latency (seconds) this replica's own
// latency table predicts for q under its last published cache column —
// the hardware-aware routing signal: heterogeneous fleets have one
// table per hardware configuration, so the same query scores
// differently per replica. The prediction covers whatever the
// scheduler would actually serve, including the best-effort fallback
// when the constraint is unsatisfiable (use predicted for the
// feasibility verdict). Lock-free like AffinityScore; returns +Inf
// when the query cannot be scheduled at all.
func (r *Replica) PredictedLatency(q sched.Query) float64 {
	lat, _ := r.predicted(q)
	return lat
}

// predicted returns the lock-free latency prediction together with the
// scheduler's feasibility verdict for it. Routers need both: an
// infeasible replica's fallback is often its FASTEST SubNet (strict-
// latency fallback is argmin latency), so scoring by latency alone
// would systematically attract queries to replicas that cannot honour
// their constraints.
func (r *Replica) predicted(q sched.Query) (float64, bool) {
	snap := r.cache.Load()
	if snap == nil {
		return math.Inf(1), false
	}
	d, err := r.sys.Scheduler().PeekAt(q, snap.col)
	if err != nil {
		return math.Inf(1), false
	}
	return d.PredictedLatency, d.Feasible
}

// ScheduledSubNet is the batch former's compatibility key: the table
// row the scheduler would serve for q against the replica's last
// published cache column (-1 when q cannot be scheduled at all).
// Queries that resolve to the same row can share one batched
// accelerator pass — they read the same weights. Lock-free like
// AffinityScore, so batch formers may call it while the replica serves.
func (r *Replica) ScheduledSubNet(q sched.Query) int {
	snap := r.cache.Load()
	if snap == nil {
		return -1
	}
	d, err := r.sys.Scheduler().PeekAt(q, snap.col)
	if err != nil {
		return -1
	}
	return d.SubNet
}

// EnableRecache turns on the replica's cache-management layer with the
// given policy (zero-valued fields select defaults): the replica starts
// tracking its served query mix and re-caches when a different cache
// column would have served the recent window better. Call before
// serving begins; enabling mid-stream discards no state but the window
// starts empty.
func (r *Replica) EnableRecache(pol RecachePolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rec = newRecacheState(pol)
}

// RecacheStats reports the window-driven cache switches enacted so far
// and their total modeled fill time in seconds (0, 0 while re-caching
// is disabled).
func (r *Replica) RecacheStats() (switches int, seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec == nil {
		return 0, 0
	}
	return r.rec.switches, r.rec.switchSec
}

// TakeRecacheCost consumes the virtual-time cost (seconds) of the
// re-cache enacted by the most recent ServeVirtual, or 0. The simq
// engine calls it after each virtual service to extend the replica's
// busy interval — the switch occupies the accelerator without serving.
func (r *Replica) TakeRecacheCost() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.rec == nil {
		return 0
	}
	c := r.rec.pendingSec
	r.rec.pendingSec = 0
	return c
}

// ID returns the replica's index within its cluster.
func (r *Replica) ID() int { return r.id }

// QueueDepth reports the number of queries routed to this replica that
// have not finished (queued plus in flight).
func (r *Replica) QueueDepth() int { return int(r.depth.Load()) }

// Queries reports how many queries this replica has served.
func (r *Replica) Queries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acc.Queries()
}

// Summary folds this replica's served stream.
func (r *Replica) Summary() Summary {
	return r.snapshot().Summary()
}

// snapshot copies the accumulator under the replica lock.
func (r *Replica) snapshot() *Accumulator {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.acc.Snapshot()
}

// Inspect runs f with exclusive access to the replica's system, for
// read-only views of scheduler/simulator state (cache contents, swap
// counters). f must not retain the system past the call.
func (r *Replica) Inspect(f func(*System)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f(r.sys)
}

// reserve marks one routed query; serve's completion releases it.
// Routers read QueueDepth, so reservation happens at routing time.
func (r *Replica) reserve() { r.depth.Add(1) }

// done releases a reservation without serving (cancelled dispatch).
func (r *Replica) done() { r.depth.Add(-1) }

// serve runs one reserved query: it serializes on the replica lock,
// serves through the context-aware path and folds the outcome into the
// replica accumulator. The reservation is released on every path.
func (r *Replica) serve(ctx context.Context, q sched.Query) (Served, error) {
	defer r.depth.Add(-1)
	if err := ctx.Err(); err != nil {
		return Served{}, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	res, err := r.sys.ServeContext(ctx, q)
	if err != nil {
		return Served{}, err
	}
	if r.rec != nil {
		if cost, switched := r.rec.maybeRecache(r.sys, q); switched {
			res.Recached = true
			// On the live path the switch cost follows the closed-loop
			// convention: charged to the next query when the system
			// accounts swap latency at all.
			r.sys.chargeSwap(cost)
		}
	}
	r.acc.Add(res)
	if res.CacheSwapped || res.Recached {
		r.publishCache()
	}
	return res, nil
}

// Serve runs one query directly on this replica (bypassing any router).
func (r *Replica) Serve(ctx context.Context, q sched.Query) (Served, error) {
	r.reserve()
	return r.serve(ctx, q)
}

// serveReserved serves one already-reserved query without a context —
// the live batcher's solo path (deadline tightening happened at submit
// time, before the query entered the batch former). It counts as a
// flush of one toward the batch-occupancy stats.
func (r *Replica) serveReserved(q sched.Query) (Served, error) {
	defer r.depth.Add(-1)
	r.mu.Lock()
	defer r.mu.Unlock()
	res, err := r.sys.Serve(q)
	if err != nil {
		return Served{}, err
	}
	if r.rec != nil {
		if cost, switched := r.rec.maybeRecache(r.sys, q); switched {
			res.Recached = true
			r.sys.chargeSwap(cost)
		}
	}
	r.acc.Add(res)
	r.acc.ObserveBatch(1)
	if res.CacheSwapped || res.Recached {
		r.publishCache()
	}
	return res, nil
}

// serveBatchReserved serves one already-reserved micro-batch on the
// live path: one ServeBatch pass under the replica lock, at most one
// window-driven re-cache after it (cost charged to the next query under
// ChargeSwapLatency, the closed-loop convention), per-member outcomes
// folded into the accumulator plus one batch-occupancy observation.
func (r *Replica) serveBatchReserved(qs []sched.Query) ([]Served, error) {
	defer r.depth.Add(-int64(len(qs)))
	r.mu.Lock()
	defer r.mu.Unlock()
	rs, err := r.sys.ServeBatch(qs)
	if err != nil {
		return nil, err
	}
	recached := false
	if r.rec != nil {
		if cost, switched := r.rec.maybeRecacheBatch(r.sys, qs); switched {
			recached = true
			rs[len(rs)-1].Recached = true
			r.sys.chargeSwap(cost)
		}
	}
	for _, res := range rs {
		r.acc.Add(res)
	}
	r.acc.ObserveBatch(len(qs))
	if recached || rs[len(rs)-1].CacheSwapped {
		r.publishCache()
	}
	return rs, nil
}

// Reserve marks one routed-but-unfinished query against the replica's
// queue depth; Release undoes it. The simq engine uses the pair to
// expose *virtual* queue depth to routers while it serializes service
// in virtual time — the same depth live dispatch maintains, so every
// Router implementation works unchanged against simulated load.
func (r *Replica) Reserve() { r.reserve() }

// Release drops one reservation (completed, dropped or shed in virtual
// time).
func (r *Replica) Release() { r.done() }

// ServeVirtual serves one query at a virtual instant on behalf of the
// simq engine: it serializes on the replica lock and publishes cache
// state like the live path, but leaves queue-depth and accumulator
// bookkeeping to the caller — the engine owns virtual time, so it alone
// knows the query's queueing telemetry. offered is the query as it
// arrived, before load-aware budget debiting: the cache-management
// layer observes it so re-caching chases the workload's (A_t, L_t)
// drift, not transient queue-induced budget erosion or degrade
// rewrites. With degrade set, the query is served by the fastest
// SubNet reachable under the replica's current cache column (admission
// control's degrade-to-fastest escape valve): accuracy floor dropped,
// budget collapsed to the column's minimum latency under a per-query
// StrictLatency override.
func (r *Replica) ServeVirtual(q, offered sched.Query, degrade bool) (Served, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if degrade {
		pol := sched.StrictLatency
		q.MinAccuracy = 0
		q.MaxLatency = r.sys.fastestBudget()
		q.Policy = &pol
	}
	res, err := r.sys.Serve(q)
	if err != nil {
		return Served{}, err
	}
	if r.rec != nil {
		if cost, switched := r.rec.maybeRecache(r.sys, offered); switched {
			res.Recached = true
			// The engine consumes the cost via TakeRecacheCost and models
			// it as replica busy time in virtual seconds.
			r.rec.pendingSec += cost
		}
	}
	if res.CacheSwapped || res.Recached {
		r.publishCache()
	}
	return res, nil
}

// ServeBatchVirtual serves one micro-batch at a virtual instant on
// behalf of the simq engine — the batched counterpart of ServeVirtual:
// one accelerator pass through System.ServeBatch (weights fetched once,
// members share the batch's total Latency), queue-depth and accumulator
// bookkeeping left to the caller. offered carries the queries as they
// arrived (before load-aware debiting and degrade rewrites) for the
// cache-management layer's window; a flush charges AT MOST ONE re-cache
// — the advisor runs once, after the whole batch. With degrade set,
// every member is served by the fastest SubNet reachable under the
// replica's current cache column (the batch former never mixes degraded
// and regular queries).
func (r *Replica) ServeBatchVirtual(qs, offered []sched.Query, degrade bool) ([]Served, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if degrade {
		pol := sched.StrictLatency
		budget := r.sys.fastestBudget()
		rewritten := make([]sched.Query, len(qs))
		for i, q := range qs {
			q.MinAccuracy = 0
			q.MaxLatency = budget
			q.Policy = &pol
			rewritten[i] = q
		}
		qs = rewritten
	}
	rs, err := r.sys.ServeBatch(qs)
	if err != nil {
		return nil, err
	}
	recached := false
	if r.rec != nil {
		if cost, switched := r.rec.maybeRecacheBatch(r.sys, offered); switched {
			recached = true
			// Marked on the last member, mirroring the CacheSwapped
			// convention: the switch follows the batch.
			rs[len(rs)-1].Recached = true
			r.rec.pendingSec += cost
		}
	}
	if recached || rs[len(rs)-1].CacheSwapped {
		r.publishCache()
	}
	return rs, nil
}
