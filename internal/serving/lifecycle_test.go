package serving

import (
	"sync"
	"testing"
)

func newLifecycleReplica(t *testing.T) *Replica {
	t.Helper()
	return NewReplica(0, newRecacheSystem(t))
}

func TestLifecycleString(t *testing.T) {
	want := map[Lifecycle]string{
		LifecycleActive:   "active",
		LifecycleStandby:  "standby",
		LifecycleDraining: "draining",
		LifecycleRetired:  "retired",
		Lifecycle(99):     "unknown",
	}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("Lifecycle(%d).String() = %q, want %q", l, l.String(), s)
		}
	}
}

// TestLifecycleConcurrentReads hammers the lifecycle atomics from
// telemetry-reader goroutines while a writer walks the replica through
// the boot → drain → retire machine — the /v1/replicas-during-a-run
// interleaving, checked under -race in CI.
func TestLifecycleConcurrentReads(t *testing.T) {
	rep := newLifecycleReplica(t)
	if rep.Lifecycle() != LifecycleActive {
		t.Fatalf("fresh replica is %v, want active (zero value)", rep.Lifecycle())
	}
	states := []Lifecycle{
		LifecycleStandby, LifecycleActive, LifecycleDraining,
		LifecycleRetired, LifecycleActive,
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				l := rep.Lifecycle()
				if l.String() == "unknown" {
					t.Errorf("torn lifecycle read: %d", l)
					return
				}
			}
		}()
	}
	for i := 0; i < 2000; i++ {
		rep.SetLifecycle(states[i%len(states)])
	}
	wg.Wait()
	if got := rep.Lifecycle(); got != states[(2000-1)%len(states)] {
		t.Errorf("final lifecycle %v, want %v", got, states[(2000-1)%len(states)])
	}
}

// TestBootCostMatchesCachedFill pins BootCost to its definition: the
// cached SubGraph's bytes over off-chip bandwidth, per tenant.
func TestBootCostMatchesCachedFill(t *testing.T) {
	rep := newLifecycleReplica(t)
	var want float64
	rep.Inspect(func(sys *System) {
		sim := sys.Simulator()
		if g := sim.Cached(); g != nil {
			want = float64(g.Bytes()) / sim.Config().OffChipBW
		}
	})
	if want == 0 {
		t.Fatal("fixture replica has no cached SubGraph; BootCost pin is vacuous")
	}
	if got := rep.BootCost(); got != want {
		t.Errorf("BootCost %g, want %g", got, want)
	}
}
