package serving

import "sushi/internal/sched"

// Timed serving data types — the ONE authoritative note on where
// open-loop queueing lives. This file defines only the data shapes
// (TimedQuery in, TimedServed out, TimedOptions/TimedSummary); the
// queueing semantics themselves — FIFO arrival-order service, bounded
// queues, admission control, load-aware budget debiting, and the
// micro-batch former (flush on full batch or window expiry) — live in
// exactly one place: the virtual-time discrete-event engine in
// internal/simq. Single-replica callers enter through simq.ServeTimed,
// clusters through simq.New/FromCluster + Run (surfaced publicly as
// sushi.System.ServeTimed and sushi.Cluster.Simulate). There is no
// wall-clock queueing loop anywhere in this package.

// TimedQuery is a query with an arrival time (seconds since stream start).
type TimedQuery struct {
	sched.Query
	// Arrival is when the query enters the queue.
	Arrival float64
}

// TimedServed is the outcome of one timed query: service outcome plus
// queueing telemetry.
type TimedServed struct {
	Served
	// Arrival, Start, Finish are absolute times; QueueDelay = Start-Arrival.
	Arrival, Start, Finish, QueueDelay float64
	// E2ELatency is Finish-Arrival (queueing + service).
	E2ELatency float64
	// Dropped reports the query was abandoned — its deadline passed
	// before service could begin, or admission control rejected or shed
	// it (§1's transient-overload failure mode). Dropped queries have a
	// zero Served.
	Dropped bool
}

// TimedOptions is the single-replica (simq.ServeTimed) subset of the
// engine's queueing discipline: an unbounded FIFO with optional budget
// debiting and deadline drops. The full surface — bounded queues,
// admission policies, routers, the micro-batch former's B and W — is
// simq.Options; cluster callers use it directly.
type TimedOptions struct {
	// LoadAware shrinks each query's effective latency budget by the
	// time it already waited (sched.Query.Debit), so the scheduler picks
	// a faster SubNet under load — the dynamic navigation of the
	// trade-off space the paper motivates. Only meaningful under
	// StrictLatency.
	LoadAware bool
	// Drop abandons queries whose remaining budget is exhausted before
	// service starts (instead of serving them hopelessly late).
	Drop bool
}

// TimedSummary aggregates a timed session.
type TimedSummary struct {
	// Queries, Served, Dropped count the stream.
	Queries, ServedCount, Dropped int
	// AvgE2E and AvgQueueDelay are in seconds (served queries only).
	AvgE2E, AvgQueueDelay float64
	// E2ESLO is the fraction of all queries (dropped count as misses)
	// finishing within their original budget.
	E2ESLO float64
	// AvgAccuracy is over served queries.
	AvgAccuracy float64
}

// SummarizeTimed folds a timed session.
func SummarizeTimed(rs []TimedServed) TimedSummary {
	var s TimedSummary
	s.Queries = len(rs)
	if len(rs) == 0 {
		return s
	}
	met := 0
	for _, r := range rs {
		if r.Dropped {
			s.Dropped++
			continue
		}
		s.ServedCount++
		s.AvgE2E += r.E2ELatency
		s.AvgQueueDelay += r.QueueDelay
		s.AvgAccuracy += r.Accuracy
		if r.LatencyMet {
			met++
		}
	}
	if s.ServedCount > 0 {
		s.AvgE2E /= float64(s.ServedCount)
		s.AvgQueueDelay /= float64(s.ServedCount)
		s.AvgAccuracy /= float64(s.ServedCount)
	}
	s.E2ESLO = float64(met) / float64(len(rs))
	return s
}
