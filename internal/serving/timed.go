package serving

import (
	"fmt"
	"sort"

	"sushi/internal/sched"
)

// TimedQuery is a query with an arrival time (seconds since stream start).
type TimedQuery struct {
	sched.Query
	// Arrival is when the query enters the queue.
	Arrival float64
}

// TimedServed is the outcome of one timed query: service outcome plus
// queueing telemetry.
type TimedServed struct {
	Served
	// Arrival, Start, Finish are absolute times; QueueDelay = Start-Arrival.
	Arrival, Start, Finish, QueueDelay float64
	// E2ELatency is Finish-Arrival (queueing + service).
	E2ELatency float64
	// Dropped reports the query was abandoned because its deadline
	// passed before service could begin (§1's transient-overload
	// failure mode). Dropped queries have a zero Served.
	Dropped bool
}

// TimedOptions controls the queueing discipline.
type TimedOptions struct {
	// LoadAware shrinks each query's effective latency budget by the
	// time it already waited, so the scheduler picks a faster SubNet
	// under load — the dynamic navigation of the trade-off space the
	// paper motivates. Only meaningful under StrictLatency.
	LoadAware bool
	// Drop abandons queries whose remaining budget is exhausted before
	// service starts (instead of serving them hopelessly late).
	Drop bool
}

// ServeTimed runs a timed stream through the single accelerator in
// arrival order (FIFO, non-preemptive — queries serialize on SushiAccel
// exactly as in the paper's serving setup).
func (s *System) ServeTimed(qs []TimedQuery, opt TimedOptions) ([]TimedServed, error) {
	ordered := make([]TimedQuery, len(qs))
	copy(ordered, qs)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Arrival < ordered[j].Arrival })

	out := make([]TimedServed, 0, len(ordered))
	clock := 0.0
	for _, tq := range ordered {
		if tq.Arrival < 0 {
			return out, fmt.Errorf("serving: negative arrival %g for query %d", tq.Arrival, tq.ID)
		}
		start := clock
		if tq.Arrival > start {
			start = tq.Arrival
		}
		wait := start - tq.Arrival
		remaining := tq.MaxLatency - wait
		if opt.Drop && tq.MaxLatency > 0 && remaining <= 0 {
			out = append(out, TimedServed{
				Arrival:    tq.Arrival,
				Start:      start,
				Finish:     start,
				QueueDelay: wait,
				E2ELatency: wait,
				Dropped:    true,
			})
			// An abandoned query consumes no accelerator time.
			continue
		}
		q := tq.Query
		if opt.LoadAware && tq.MaxLatency > 0 {
			budget := remaining
			if budget < 0 {
				budget = 0
			}
			q.MaxLatency = budget
		}
		r, err := s.Serve(q)
		if err != nil {
			return out, err
		}
		finish := start + r.Latency
		clock = finish
		e2e := finish - tq.Arrival
		// SLO attainment for timed serving judges the end-to-end time
		// against the original budget.
		r.LatencyMet = tq.MaxLatency <= 0 || e2e <= tq.MaxLatency
		out = append(out, TimedServed{
			Served:     r,
			Arrival:    tq.Arrival,
			Start:      start,
			Finish:     finish,
			QueueDelay: wait,
			E2ELatency: e2e,
		})
	}
	return out, nil
}

// TimedSummary aggregates a timed session.
type TimedSummary struct {
	// Queries, Served, Dropped count the stream.
	Queries, ServedCount, Dropped int
	// AvgE2E and AvgQueueDelay are in seconds (served queries only).
	AvgE2E, AvgQueueDelay float64
	// E2ESLO is the fraction of all queries (dropped count as misses)
	// finishing within their original budget.
	E2ESLO float64
	// AvgAccuracy is over served queries.
	AvgAccuracy float64
}

// SummarizeTimed folds a timed session.
func SummarizeTimed(rs []TimedServed) TimedSummary {
	var s TimedSummary
	s.Queries = len(rs)
	if len(rs) == 0 {
		return s
	}
	met := 0
	for _, r := range rs {
		if r.Dropped {
			s.Dropped++
			continue
		}
		s.ServedCount++
		s.AvgE2E += r.E2ELatency
		s.AvgQueueDelay += r.QueueDelay
		s.AvgAccuracy += r.Accuracy
		if r.LatencyMet {
			met++
		}
	}
	if s.ServedCount > 0 {
		s.AvgE2E /= float64(s.ServedCount)
		s.AvgQueueDelay /= float64(s.ServedCount)
		s.AvgAccuracy /= float64(s.ServedCount)
	}
	s.E2ESLO = float64(met) / float64(len(rs))
	return s
}
