package serving

import "sushi/internal/sched"

// Timed serving data types. The queueing semantics themselves — FIFO
// arrival-order service, bounded queues, admission control, load-aware
// budget debiting — live in exactly one place: the virtual-time
// discrete-event engine in internal/simq. simq.ServeTimed is the
// single-replica entry point that replaced System.ServeTimed.

// TimedQuery is a query with an arrival time (seconds since stream start).
type TimedQuery struct {
	sched.Query
	// Arrival is when the query enters the queue.
	Arrival float64
}

// TimedServed is the outcome of one timed query: service outcome plus
// queueing telemetry.
type TimedServed struct {
	Served
	// Arrival, Start, Finish are absolute times; QueueDelay = Start-Arrival.
	Arrival, Start, Finish, QueueDelay float64
	// E2ELatency is Finish-Arrival (queueing + service).
	E2ELatency float64
	// Dropped reports the query was abandoned — its deadline passed
	// before service could begin, or admission control rejected or shed
	// it (§1's transient-overload failure mode). Dropped queries have a
	// zero Served.
	Dropped bool
}

// TimedOptions controls the queueing discipline.
type TimedOptions struct {
	// LoadAware shrinks each query's effective latency budget by the
	// time it already waited (sched.Query.Debit), so the scheduler picks
	// a faster SubNet under load — the dynamic navigation of the
	// trade-off space the paper motivates. Only meaningful under
	// StrictLatency.
	LoadAware bool
	// Drop abandons queries whose remaining budget is exhausted before
	// service starts (instead of serving them hopelessly late).
	Drop bool
}

// TimedSummary aggregates a timed session.
type TimedSummary struct {
	// Queries, Served, Dropped count the stream.
	Queries, ServedCount, Dropped int
	// AvgE2E and AvgQueueDelay are in seconds (served queries only).
	AvgE2E, AvgQueueDelay float64
	// E2ESLO is the fraction of all queries (dropped count as misses)
	// finishing within their original budget.
	E2ESLO float64
	// AvgAccuracy is over served queries.
	AvgAccuracy float64
}

// SummarizeTimed folds a timed session.
func SummarizeTimed(rs []TimedServed) TimedSummary {
	var s TimedSummary
	s.Queries = len(rs)
	if len(rs) == 0 {
		return s
	}
	met := 0
	for _, r := range rs {
		if r.Dropped {
			s.Dropped++
			continue
		}
		s.ServedCount++
		s.AvgE2E += r.E2ELatency
		s.AvgQueueDelay += r.QueueDelay
		s.AvgAccuracy += r.Accuracy
		if r.LatencyMet {
			met++
		}
	}
	if s.ServedCount > 0 {
		s.AvgE2E /= float64(s.ServedCount)
		s.AvgQueueDelay /= float64(s.ServedCount)
		s.AvgAccuracy /= float64(s.ServedCount)
	}
	s.E2ESLO = float64(met) / float64(len(rs))
	return s
}
