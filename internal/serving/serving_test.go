package serving

import (
	"math"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// fixtures caches the expensive supernet/frontier construction per run.
func fixtures(t *testing.T, kind supernet.Kind) (*supernet.SuperNet, []*supernet.SubNet) {
	t.Helper()
	var s *supernet.SuperNet
	if kind == supernet.ResNet50 {
		s = supernet.NewOFAResNet50()
	} else {
		s = supernet.NewOFAMobileNetV3()
	}
	fr, err := s.Frontier()
	if err != nil {
		t.Fatal(err)
	}
	return s, fr
}

func newSystem(t *testing.T, kind supernet.Kind, mode Mode, policy sched.Policy) *System {
	t.Helper()
	s, fr := fixtures(t, kind)
	sys, err := New(s, fr, Options{
		Accel:      accel.ZCU104(),
		Policy:     policy,
		Q:          4,
		Mode:       mode,
		Candidates: 12,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// latRange spans the frontier's latencies on the system so constraints
// are meaningfully satisfiable.
func latRange(sys *System) workload.Range {
	tab := sys.Table()
	lo := tab.Lookup(0, 0)
	hi := tab.Lookup(tab.Rows()-1, 0)
	return workload.Range{Lo: lo * 0.9, Hi: hi * 1.1}
}

func accRange(sys *System) workload.Range {
	tab := sys.Table()
	return workload.Range{
		Lo: tab.SubNets[0].Accuracy - 0.2,
		Hi: tab.SubNets[tab.Rows()-1].Accuracy,
	}
}

func TestModeString(t *testing.T) {
	if Full.String() != "Sushi" || StateUnaware.String() != "Sushi w/o Sched" || NoPB.String() != "No-Sushi" {
		t.Error("mode strings wrong")
	}
}

func TestNewValidation(t *testing.T) {
	s, fr := fixtures(t, supernet.MobileNetV3)
	if _, err := New(s, nil, Options{Accel: accel.ZCU104()}); err == nil {
		t.Error("empty frontier accepted")
	}
	if _, err := New(s, fr, Options{Accel: accel.ZCU104(), Mode: Mode(9)}); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := New(s, fr, Options{Accel: accel.ZCU104(), StaticColumn: 99}); err == nil {
		t.Error("out-of-range static column accepted")
	}
}

func TestStrictLatencyServesUnderConstraint(t *testing.T) {
	// Fig. 15a/c: under STRICT_LATENCY, served latency must sit at or
	// below the constraint whenever the constraint is feasible.
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	qs, err := workload.Uniform(120, accRange(sys), latRange(sys), 42)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	feasible, met := 0, 0
	for _, r := range rs {
		if !r.Feasible {
			continue
		}
		feasible++
		if r.Latency <= r.Query.MaxLatency+1e-12 {
			met++
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible queries in stream")
	}
	if met != feasible {
		t.Errorf("served latency exceeded feasible constraint in %d/%d cases", feasible-met, feasible)
	}
}

func TestStrictAccuracyServesAboveConstraint(t *testing.T) {
	// Fig. 15b/d: under STRICT_ACCURACY, served accuracy must meet the
	// constraint whenever feasible.
	sys := newSystem(t, supernet.ResNet50, Full, sched.StrictAccuracy)
	qs, err := workload.Uniform(120, accRange(sys), latRange(sys), 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Feasible && !r.AccuracyMet {
			t.Errorf("query %d: served %.2f%% < constraint %.2f%%", r.Query.ID, r.Accuracy, r.Query.MinAccuracy)
		}
	}
}

func TestFig16Ordering(t *testing.T) {
	// Fig. 16: at equal served accuracy, Full SUSHI must beat
	// StateUnaware, which must beat NoPB, in average latency. The served
	// accuracy stream is identical across modes under STRICT_ACCURACY
	// with the same constraints (accuracy is cache-independent), so the
	// latency comparison is apples-to-apples.
	for _, kind := range []supernet.Kind{supernet.ResNet50, supernet.MobileNetV3} {
		s, fr := fixtures(t, kind)
		var sums [3]Summary
		var accs [3]float64
		for mi, mode := range []Mode{Full, StateUnaware, NoPB} {
			sys, err := New(s, fr, Options{
				Accel:        accel.ZCU104(),
				Policy:       sched.StrictAccuracy,
				Q:            4,
				Mode:         mode,
				Candidates:   16,
				StaticColumn: -1, // blind pick, per "state-unaware caching"
				Seed:         1,
			})
			if err != nil {
				t.Fatal(err)
			}
			qs, err := workload.Uniform(150, accRange(sys), latRange(sys), 99)
			if err != nil {
				t.Fatal(err)
			}
			rs, err := sys.ServeAll(qs)
			if err != nil {
				t.Fatal(err)
			}
			sums[mi] = Summarize(rs)
			accs[mi] = sums[mi].AvgAccuracy
		}
		if math.Abs(accs[0]-accs[2]) > 1e-9 {
			t.Fatalf("%v: served accuracy differs across modes (%.4f vs %.4f) — comparison invalid", kind, accs[0], accs[2])
		}
		full, unaware, nopb := sums[0].AvgLatency, sums[1].AvgLatency, sums[2].AvgLatency
		t.Logf("%v: Sushi %.3f ms | w/o Sched %.3f ms | No-Sushi %.3f ms (save vs No-Sushi %.1f%%)",
			kind, full*1e3, unaware*1e3, nopb*1e3, (1-full/nopb)*100)
		// On a stationary uniform mix the adaptive scheduler's edge over
		// a static cache is small (the paper's own Table 5 reports 1-9%);
		// allow near-ties but never a real regression.
		if full > unaware*1.005 {
			t.Errorf("%v: Full (%.4g) regresses vs StateUnaware (%.4g)", kind, full, unaware)
		}
		if !(unaware < nopb) {
			t.Errorf("%v: StateUnaware (%.4g) !< NoPB (%.4g)", kind, unaware, nopb)
		}
		if !(full < nopb) {
			t.Errorf("%v: Full (%.4g) !< NoPB (%.4g)", kind, full, nopb)
		}
		// PB-driven latency reduction; the paper reports 21-25% on its
		// simulator — our byte-accounting model lands lower (see
		// EXPERIMENTS.md) but must be clearly positive.
		save := 1 - full/nopb
		if save < 0.003 || save > 0.5 {
			t.Errorf("%v: Sushi-vs-NoSushi saving %.2f%% outside (0.3%%, 50%%)", kind, save*100)
		}
	}
}

func TestHitRatioBand(t *testing.T) {
	// Appendix A.4: hit ratio ~66% (ResNet50), ~78% (MobV3); MobV3's is
	// higher because the PB holds a larger fraction of its SubNets.
	ratios := map[supernet.Kind]float64{}
	for _, kind := range []supernet.Kind{supernet.ResNet50, supernet.MobileNetV3} {
		sys := newSystem(t, kind, Full, sched.StrictAccuracy)
		qs, err := workload.Uniform(100, accRange(sys), latRange(sys), 5)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			t.Fatal(err)
		}
		sum := Summarize(rs)
		ratios[kind] = sum.AvgHitRatio
		if sum.AvgHitRatio <= 0.05 || sum.AvgHitRatio > 1 {
			t.Errorf("%v: hit ratio %.2f outside (0.05, 1]", kind, sum.AvgHitRatio)
		}
	}
	if ratios[supernet.MobileNetV3] <= ratios[supernet.ResNet50] {
		t.Errorf("MobV3 hit ratio %.2f should exceed ResNet50's %.2f (A.4)",
			ratios[supernet.MobileNetV3], ratios[supernet.ResNet50])
	}
	t.Logf("hit ratios: RN50 %.2f, MobV3 %.2f (paper: 0.66, 0.78)",
		ratios[supernet.ResNet50], ratios[supernet.MobileNetV3])
}

func TestCacheSwapsHappenEveryQ(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	qs, err := workload.Uniform(40, accRange(sys), latRange(sys), 3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rs {
		if r.CacheSwapped && (i+1)%4 != 0 {
			t.Errorf("swap at query %d, not a Q=4 boundary", i+1)
		}
	}
	swaps, bytes := sys.Simulator().Swaps()
	if swaps == 0 {
		t.Log("no swaps occurred (stationary workload); acceptable but unusual")
	}
	if swaps > 0 && bytes <= 0 {
		t.Error("swaps recorded but no bytes moved")
	}
}

func TestNoPBNeverHits(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, NoPB, sched.StrictLatency)
	qs, err := workload.Uniform(30, accRange(sys), latRange(sys), 4)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.HitBytes != 0 || r.HitRatio != 0 || r.CacheSwapped {
			t.Fatalf("NoPB system produced cache activity: %+v", r)
		}
	}
}

func TestChargeSwapLatency(t *testing.T) {
	// With swap charging on, total latency must be at least the uncharged
	// total plus some positive swap time (if any swap occurred).
	s, fr := fixtures(t, supernet.MobileNetV3)
	mk := func(charge bool) Summary {
		sys, err := New(s, fr, Options{
			Accel: accel.ZCU104(), Policy: sched.StrictAccuracy, Q: 2,
			Mode: Full, Candidates: 12, Seed: 1, ChargeSwapLatency: charge,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Alternate between extreme constraints to force cache movement.
		var qs []sched.Query
		for i := 0; i < 30; i++ {
			a := fr[0].Accuracy
			if i%2 == 1 {
				a = fr[len(fr)-1].Accuracy
			}
			qs = append(qs, sched.Query{ID: i, MinAccuracy: a})
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(rs)
	}
	without := mk(false)
	with := mk(true)
	if with.CacheSwaps == 0 {
		t.Skip("no swaps triggered; charging not exercised")
	}
	if with.AvgLatency <= without.AvgLatency {
		t.Errorf("charged latency %.4g !> uncharged %.4g", with.AvgLatency, without.AvgLatency)
	}
}

func TestSummarize(t *testing.T) {
	rs := []Served{
		{Latency: 1e-3, Accuracy: 76, LatencyMet: true, AccuracyMet: true, Feasible: true, HitRatio: 0.5},
		{Latency: 3e-3, Accuracy: 78, LatencyMet: false, AccuracyMet: true, Feasible: false, HitRatio: 0.7, CacheSwapped: true},
	}
	s := Summarize(rs)
	if s.Queries != 2 {
		t.Error("query count")
	}
	if math.Abs(s.AvgLatency-2e-3) > 1e-12 {
		t.Error("avg latency")
	}
	if math.Abs(s.AvgAccuracy-77) > 1e-12 {
		t.Error("avg accuracy")
	}
	if math.Abs(s.LatencySLO-0.5) > 1e-12 || math.Abs(s.AccuracySLO-1) > 1e-12 {
		t.Error("SLO attainment")
	}
	if s.CacheSwaps != 1 {
		t.Error("swap count")
	}
	if s.P50Latency != 1e-3 || s.P99Latency != 3e-3 {
		t.Errorf("percentiles p50=%g p99=%g", s.P50Latency, s.P99Latency)
	}
	if Summarize(nil).Queries != 0 {
		t.Error("empty summarize")
	}
	if s.String() == "" {
		t.Error("summary string empty")
	}
}

func TestAdaptivityWinsOnPhasedWorkload(t *testing.T) {
	// When the query mix shifts over time (the paper's motivating
	// dynamically-variable deployments, §1), the Q-periodic cache
	// adaptation should recover near-best-static performance without
	// oracle knowledge of which static SubGraph is best, and strictly
	// beat the average (arbitrary) static choice.
	//
	// Reproduction note: because OFA SubNets share weights as *nested
	// prefixes*, the smallest frequently-served SubNet's cells are useful
	// to every larger SubNet, so an oracle static cache is near-universal
	// and the adaptive margin over it is structurally thin — consistent
	// with the paper's own Table 5 (+1% for MobV3, +4-9% for ResNet50).
	// The honest claim is adaptive ≥ arbitrary-static, ≈ oracle-static.
	s, fr := fixtures(t, supernet.MobileNetV3)
	mk := func(mode Mode, static int) Summary {
		sys, err := New(s, fr, Options{
			Accel:        accel.ZCU104(),
			Policy:       sched.StrictAccuracy,
			Q:            4,
			Mode:         mode,
			Candidates:   16,
			StaticColumn: static,
			Seed:         1,
		})
		if err != nil {
			t.Fatal(err)
		}
		loAcc := fr[0].Accuracy
		hiAcc := fr[len(fr)-1].Accuracy
		qs, err := workload.Phased(160, []workload.Phase{
			{Name: "low", Queries: 40, Acc: workload.Range{Lo: loAcc - 0.1, Hi: loAcc}, Lat: workload.Range{Lo: 1, Hi: 1}},
			{Name: "high", Queries: 40, Acc: workload.Range{Lo: hiAcc - 0.1, Hi: hiAcc}, Lat: workload.Range{Lo: 1, Hi: 1}},
		}, 21)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := sys.ServeAll(qs)
		if err != nil {
			t.Fatal(err)
		}
		return Summarize(rs)
	}
	adaptive := mk(Full, 0)
	bestStatic, sumStatic := math.Inf(1), 0.0
	const statics = 8
	for col := 0; col < statics; col++ {
		s := mk(StateUnaware, col).AvgLatency
		sumStatic += s
		if s < bestStatic {
			bestStatic = s
		}
	}
	avgStatic := sumStatic / statics
	t.Logf("phased: adaptive %.4f ms | best-static %.4f ms | avg-static %.4f ms",
		adaptive.AvgLatency*1e3, bestStatic*1e3, avgStatic*1e3)
	if adaptive.AvgLatency > bestStatic*1.005 {
		t.Errorf("adaptive %.4g ms regresses vs oracle static %.4g ms", adaptive.AvgLatency, bestStatic)
	}
	if adaptive.AvgLatency >= avgStatic {
		t.Errorf("adaptive %.4g ms !< average arbitrary static %.4g ms", adaptive.AvgLatency, avgStatic)
	}
	if adaptive.CacheSwaps == 0 {
		t.Error("adaptive system never swapped on a phased workload")
	}
}

func TestNewFailsWhenNoCandidatesFit(t *testing.T) {
	// A Persistent Buffer smaller than any weight cell leaves nothing to
	// cache; the system must fail loudly instead of serving with a
	// silently useless table.
	s, fr := fixtures(t, supernet.MobileNetV3)
	cfg := accel.ZCU104()
	cfg.PBBytes = 1
	_, err := New(s, fr, Options{
		Accel: cfg, Policy: sched.StrictAccuracy, Q: 4, Mode: Full, Candidates: 8, Seed: 1,
	})
	if err == nil {
		t.Fatal("1-byte PB accepted")
	}
}

func TestQLargerThanStream(t *testing.T) {
	// A cache period longer than the stream means no updates — the
	// system must still serve correctly.
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictAccuracy)
	qs, err := workload.Uniform(3, accRange(sys), latRange(sys), 1)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.CacheSwapped {
			t.Fatal("swap before Q queries served")
		}
	}
}
