package serving

// Replica lifecycle: the elastic-fleet state machine. A fixed fleet
// keeps every replica LifecycleActive forever — the zero value — so
// non-autoscaled deployments behave exactly as before. An elastic
// fleet boots its Max replicas up front (cache columns are assigned at
// deploy time, so PartitionPolicy and boot-column invariants hold for
// every replica that could ever serve) and moves them through
//
//	Standby ──boot──▶ Active ──drain──▶ Draining ──empty──▶ Retired
//	   ▲                                                       │
//	   └───────────────────── re-boot ─────────────────────────┘
//
// under the simq engine's control. The state is advisory for the live
// serve paths (they serve whatever is routed to them); the engine is
// the enforcement point — it only routes to Active replicas.

// Lifecycle is a replica's admission state in an elastic fleet.
type Lifecycle int32

const (
	// LifecycleActive admits and serves queries (the zero value: every
	// replica of a fixed fleet is Active forever).
	LifecycleActive Lifecycle = iota
	// LifecycleStandby is booted but not admitting: an elastic fleet's
	// spare capacity, waiting for a scale-up.
	LifecycleStandby
	// LifecycleDraining stopped admitting and is finishing its queued
	// and in-flight work.
	LifecycleDraining
	// LifecycleRetired is drained and out of every router's view; a
	// later scale-up may re-boot it (paying the cold-PB fill again).
	LifecycleRetired
)

// String implements fmt.Stringer (telemetry spelling, lower-case).
func (l Lifecycle) String() string {
	switch l {
	case LifecycleActive:
		return "active"
	case LifecycleStandby:
		return "standby"
	case LifecycleDraining:
		return "draining"
	case LifecycleRetired:
		return "retired"
	}
	return "unknown"
}

// Lifecycle reports the replica's current admission state.
func (r *Replica) Lifecycle() Lifecycle { return Lifecycle(r.life.Load()) }

// SetLifecycle moves the replica to state l. Atomic, so telemetry
// readers (GET /v1/replicas) never tear a transition.
func (r *Replica) SetLifecycle(l Lifecycle) { r.life.Store(int32(l)) }

// BootCost is the virtual-time cost (seconds) of bringing this replica
// up with a cold Persistent Buffer: every tenant's boot-column
// SubGraph streamed from DRAM at the accelerator's off-chip bandwidth
// — exactly a full re-cache fill, which is what a scale-up pays before
// the replica can serve (0 for NoPB replicas: nothing to fill).
func (r *Replica) BootCost() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var c float64
	for _, t := range r.tenants {
		sim := t.sys.Simulator()
		if g := sim.Cached(); g != nil {
			c += float64(g.Bytes()) / sim.Config().OffChipBW
		}
	}
	return c
}
