package serving

import "fmt"

// PartitionMode selects how a multi-tenant replica splits its shared
// Persistent Buffer between co-hosted models.
type PartitionMode int

const (
	// PartitionStatic fixes the equal boot-time split (PB/M per model)
	// for the lifetime of the deployment — the isolation end of the
	// consolidation-vs-isolation trade-off.
	PartitionStatic PartitionMode = iota
	// PartitionTraffic re-apportions PB shares to the observed per-model
	// traffic every Window served queries: a hot model steals half-slots
	// from a cold one, enacted through the existing cache-switch
	// machinery (System.Recache / sched.Scheduler.SetColumn) with the
	// fill cost modeled exactly like a window-driven re-cache.
	PartitionTraffic
)

// String implements fmt.Stringer.
func (m PartitionMode) String() string {
	switch m {
	case PartitionStatic:
		return "static"
	case PartitionTraffic:
		return "traffic"
	default:
		return fmt.Sprintf("PartitionMode(%d)", int(m))
	}
}

// ParsePartitionMode maps the HTTP/CLI names to PartitionMode values.
func ParsePartitionMode(name string) (PartitionMode, error) {
	switch name {
	case "", "static":
		return PartitionStatic, nil
	case "traffic":
		return PartitionTraffic, nil
	default:
		return 0, fmt.Errorf("serving: unknown partition mode %q (want static or traffic)", name)
	}
}

// PartitionPolicy configures the shared-PB cache partitioner of a
// multi-tenant replica. The Persistent Buffer is divided into 2M
// half-slots for M co-hosted models; every model starts at the static
// split of 2 half-slots (PB/M) and — in PartitionTraffic mode — shares
// are re-apportioned to the observed per-model traffic (largest-
// remainder rounding, floor one half-slot, cap M+1 half-slots) every
// Window served queries. All decisions are pure functions of the
// observed query sequence, so runs stay deterministic per seed. The
// zero value selects the static split.
type PartitionPolicy struct {
	// Mode picks static vs traffic-weighted splitting.
	Mode PartitionMode
	// Window is the number of replica-served queries between traffic
	// rebalances (default 32; ignored in static mode).
	Window int
}

// Validate rejects option values the partitioner would misread; zero
// values are valid (they select defaults).
func (p PartitionPolicy) Validate() error {
	switch p.Mode {
	case PartitionStatic, PartitionTraffic:
	default:
		return fmt.Errorf("serving: unknown partition mode %d", int(p.Mode))
	}
	if p.Window < 0 {
		return fmt.Errorf("serving: partition window %d must be non-negative", p.Window)
	}
	return nil
}

// withDefaults resolves zero-valued fields.
func (p PartitionPolicy) withDefaults() PartitionPolicy {
	if p.Window <= 0 {
		p.Window = 32
	}
	return p
}

// partitionState is one replica's shared-PB partitioner bookkeeping.
// It is owned by the replica and mutated only under the replica lock.
type partitionState struct {
	pol PartitionPolicy
	// halfSlot is the stealing granularity in bytes: PB/(2M).
	halfSlot int64
	// slots is the total half-slot budget 2M; maxSlots caps one tenant
	// at M+1 (every other tenant keeps its floor of 1).
	slots, maxSlots int
	// switches and switchSec total the share-driven cache switches and
	// their modeled fill time in seconds.
	switches  int
	switchSec float64
	// pendingSec is the fill cost of the latest rebalance, not yet
	// consumed by the simq engine (Replica.TakeRecacheCost).
	pendingSec float64
}

func newPartitionState(pol PartitionPolicy, pbBytes int64, tenants int) *partitionState {
	pol = pol.withDefaults()
	return &partitionState{
		pol:      pol,
		halfSlot: pbBytes / int64(2*tenants),
		slots:    2 * tenants,
		maxSlots: tenants + 1,
	}
}

// apportion distributes slots across weights by largest remainder,
// clamped to [lo, hi] per entry. Ties break toward the lower index, so
// the result is a pure function of its inputs. A zero weight vector
// splits equally.
func apportion(weights []int, slots, lo, hi int) []int {
	n := len(weights)
	total := 0
	for _, w := range weights {
		total += w
	}
	out := make([]int, n)
	rem := make([]float64, n)
	sum := 0
	for i, w := range weights {
		q := float64(slots) / float64(n)
		if total > 0 {
			q = float64(slots) * float64(w) / float64(total)
		}
		b := int(q)
		if b < lo {
			b = lo
		}
		if b > hi {
			b = hi
		}
		out[i] = b
		rem[i] = q - float64(b)
		sum += b
	}
	for sum < slots {
		best := -1
		for i := range out {
			if out[i] >= hi {
				continue
			}
			if best < 0 || rem[i] > rem[best] {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out[best]++
		rem[best]--
		sum++
	}
	for sum > slots {
		worst := -1
		for i := range out {
			if out[i] <= lo {
				continue
			}
			if worst < 0 || rem[i] < rem[worst] {
				worst = i
			}
		}
		if worst < 0 {
			break
		}
		out[worst]--
		rem[worst]++
		sum--
	}
	return out
}

// bestFitColumn picks the cache column holding the largest SubGraph
// that fits share bytes (ties toward the lower index), or -1 when no
// column fits. "Biggest cache that fits" maximizes SubGraph-Stationary
// reuse for whatever mix lands next; the per-tenant cache-management
// layer then fine-tunes WITHIN the share by replayed traffic.
func bestFitColumn(sys *System, share int64) int {
	tab := sys.Table()
	best, bestBytes := -1, int64(-1)
	for j := 0; j < tab.Cols(); j++ {
		b := tab.Graphs[j].Bytes()
		if b <= share && b > bestBytes {
			best, bestBytes = j, b
		}
	}
	return best
}

// maybeRebalance re-apportions PB shares to the observed per-model
// traffic once the window has filled, enacting cache switches for
// every tenant whose share moved: a shrunk tenant is FORCED onto a
// column that fits its new share, a grown tenant takes the largest
// column its new share admits (only when strictly larger than its
// current cache — growth is opportunistic, shrinking is mandatory).
// enact receives each switched tenant and the modeled fill cost in
// seconds (the caller charges it to the next query or to virtual
// time). The caller owns the replica lock. Static mode never
// rebalances.
func (ps *partitionState) maybeRebalance(r *Replica, enact func(*tenant, float64)) {
	if ps.pol.Mode != PartitionTraffic {
		return
	}
	window := 0
	for _, t := range r.tenants {
		window += t.windowQueries
	}
	if window < ps.pol.Window {
		return
	}
	weights := make([]int, len(r.tenants))
	for i, t := range r.tenants {
		weights[i] = t.windowQueries
		t.windowQueries = 0
	}
	targets := apportion(weights, ps.slots, 1, ps.maxSlots)
	for i, t := range r.tenants {
		share := int64(targets[i]) * ps.halfSlot
		if share == t.shareBytes {
			continue
		}
		grew := share > t.shareBytes
		t.shareBytes = share
		t.sys.Scheduler().SetCacheBudget(share)
		cached := t.sys.Simulator().Cached()
		if cached == nil {
			continue
		}
		cur := cached.Bytes()
		switch {
		case !grew && cur > share:
			// Mandatory eviction: the tenant's cache no longer fits its
			// share.
		case grew:
			// Opportunistic growth: only switch for a strictly larger
			// cache.
		default:
			continue
		}
		col := bestFitColumn(t.sys, share)
		if col < 0 || col == t.sys.Scheduler().CacheColumn() {
			continue
		}
		if grew && t.sys.Table().Graphs[col].Bytes() <= cur {
			continue
		}
		cost, err := t.sys.Recache(col)
		if err != nil {
			continue
		}
		ps.switches++
		ps.switchSec += cost
		enact(t, cost)
		r.publishCache(t)
	}
}
