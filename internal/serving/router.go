package serving

import (
	"math/rand"

	"sushi/internal/sched"
)

// Router decides which replica serves a query. Pick is invoked under
// the cluster's dispatch lock, so implementations may keep unguarded
// state; they must return an index in [0, len(reps)).
type Router interface {
	// Name identifies the routing policy ("round-robin", ...).
	Name() string
	// Pick selects the replica for q.
	Pick(q sched.Query, reps []*Replica) int
}

// ShardSafeRouter marks routers whose pick sequence depends only on the
// order of Pick calls (and their own seeded state) — never on replica
// load, cache or lifecycle state. The simq engine's sharded mode
// pre-routes the whole arrival stream through the router before any
// query is served; only shard-safe routers produce the same pick
// sequence under pre-routing as under live routing, which is what makes
// sharded runs bit-identical to sequential ones. Round-robin and random
// qualify; least-loaded, fastest and affinity read replica state and do
// not.
type ShardSafeRouter interface {
	Router
	// ShardSafe is a marker; implementations leave it empty.
	ShardSafe()
}

// builtinRouters constructs one instance of every router this package
// ships, so capability listings (ShardSafeRouterNames) probe the actual
// implementations instead of repeating their names in prose that rots
// as routers are added.
func builtinRouters() []Router {
	return []Router{
		NewRoundRobin(),
		NewLeastLoaded(),
		NewRandom(0),
		NewFastest(),
		NewAffinity(),
	}
}

// ShardSafeRouterNames lists the names of the built-in routers that
// implement ShardSafeRouter, in registration order. Validation errors
// (the simq engine's sharded-mode check) quote this list so the set of
// legal routers is derived, never hard-coded.
func ShardSafeRouterNames() []string {
	var names []string
	for _, r := range builtinRouters() {
		if _, ok := r.(ShardSafeRouter); ok {
			names = append(names, r.Name())
		}
	}
	return names
}

// NewRoundRobin cycles through replicas in order — the baseline
// stateless dispatcher.
func NewRoundRobin() Router { return &roundRobin{} }

type roundRobin struct{ next int }

func (r *roundRobin) Name() string { return "round-robin" }

// ShardSafe marks round-robin picks as independent of replica state.
func (r *roundRobin) ShardSafe() {}

func (r *roundRobin) Pick(_ sched.Query, reps []*Replica) int {
	i := r.next % len(reps)
	r.next++
	return i
}

// NewLeastLoaded picks the replica with the smallest queue depth
// (lowest index on ties), the classic join-shortest-queue dispatcher.
func NewLeastLoaded() Router { return leastLoaded{} }

type leastLoaded struct{}

func (leastLoaded) Name() string { return "least-loaded" }

func (leastLoaded) Pick(_ sched.Query, reps []*Replica) int {
	best := 0
	for i := 1; i < len(reps); i++ {
		if reps[i].QueueDepth() < reps[best].QueueDepth() {
			best = i
		}
	}
	return best
}

// NewRandom draws replicas from a seeded uniform stream; useful as a
// reproducible load-spreading baseline in experiments.
func NewRandom(seed int64) Router {
	return &random{rng: rand.New(rand.NewSource(seed))}
}

type random struct{ rng *rand.Rand }

func (r *random) Name() string { return "random" }

// ShardSafe marks seeded-random picks as independent of replica state.
func (r *random) ShardSafe() {}

func (r *random) Pick(_ sched.Query, reps []*Replica) int {
	return r.rng.Intn(len(reps))
}

// NewFastest is the hardware-aware dispatcher for heterogeneous fleets:
// it scores every replica by the service latency its OWN latency table
// predicts for the query under its published cache column (seconds),
// scaled by the replica's queue depth plus one as a FIFO completion
// estimate, and picks the minimum (lowest index on ties). Replicas that
// can serve the query feasibly always outrank replicas that cannot —
// an infeasible replica's prediction is its best-effort fallback (under
// strict latency, its FASTEST SubNet), so latency alone would
// systematically attract queries to the one replica guaranteed to miss
// the constraint. On a mixed ZCU104/AlveoU50 fleet this steers
// compute-heavy SubNets to the wide datacenter array and small SubNets
// to the embedded board — the cluster-level reading of §5.4.2's
// observation that neither board dominates. Scoring is lock-free
// (Replica.PredictedLatency and the scheduler's pure PeekAt).
func NewFastest() Router { return fastest{} }

type fastest struct{}

func (fastest) Name() string { return "fastest" }

func (fastest) Pick(q sched.Query, reps []*Replica) int {
	best, bestScore, bestFeasible := 0, 0.0, false
	for i, rep := range reps {
		lat, feasible := rep.predicted(q)
		score := lat * float64(rep.QueueDepth()+1)
		better := score < bestScore
		if feasible != bestFeasible {
			better = feasible
		}
		if i == 0 || better {
			best, bestScore, bestFeasible = i, score, feasible
		}
	}
	return best
}

// NewAffinity steers each query to the replica whose cached SubGraph
// best covers the SubNet that replica would serve — SubGraph Stationary
// reuse (Appendix A.4's hit ratio) maximized at cluster scale. Scoring
// reads each replica's atomically published cache snapshot
// (Replica.AffinityScore), so dispatch never blocks on in-flight
// serves. Ties break toward the shallower queue, then the lower index,
// so affinity degrades to least-loaded when caches are
// indistinguishable.
func NewAffinity() Router { return affinity{} }

type affinity struct{}

func (affinity) Name() string { return "affinity" }

func (affinity) Pick(q sched.Query, reps []*Replica) int {
	best, bestScore := 0, -1.0
	for i, rep := range reps {
		score := rep.AffinityScore(q)
		switch {
		case score > bestScore:
			best, bestScore = i, score
		case score == bestScore && rep.QueueDepth() < reps[best].QueueDepth():
			best = i
		}
	}
	return best
}
