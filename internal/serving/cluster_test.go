package serving

import (
	"context"
	"math"
	"reflect"
	"testing"
	"time"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// newCluster builds R replicas over one shared latency table, replica i
// booting with static column i (distinct initial cache states).
func newCluster(t *testing.T, r int, mode Mode, router Router) *Cluster {
	t.Helper()
	s, fr := fixtures(t, supernet.MobileNetV3)
	opt := Options{
		Accel:      accel.ZCU104(),
		Policy:     sched.StrictLatency,
		Q:          4,
		Mode:       mode,
		Candidates: 12,
		Seed:       1,
	}
	table, _, err := BuildTable(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	systems := make([]*System, r)
	for i := range systems {
		o := opt
		o.Table = table
		o.StaticColumn = i % table.Cols()
		systems[i], err = New(s, fr, o)
		if err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewCluster(systems, router)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func clusterWorkload(t *testing.T, c *Cluster, n int) []sched.Query {
	t.Helper()
	var sys *System
	c.Replicas()[0].Inspect(func(s *System) { sys = s })
	qs, err := workload.Uniform(n, accRange(sys), latRange(sys), 7)
	if err != nil {
		t.Fatal(err)
	}
	return qs
}

// summariesClose compares summaries field-by-field with a relative
// tolerance: folding per-replica sums re-associates float additions.
func summariesClose(a, b Summary) bool {
	if a.Queries != b.Queries || a.CacheSwaps != b.CacheSwaps || a.HitBytes != b.HitBytes {
		return false
	}
	close := func(x, y float64) bool {
		d := math.Abs(x - y)
		return d <= 1e-9 || d <= 1e-9*math.Max(math.Abs(x), math.Abs(y))
	}
	return close(a.AvgLatency, b.AvgLatency) && close(a.P50Latency, b.P50Latency) &&
		close(a.P99Latency, b.P99Latency) && close(a.AvgAccuracy, b.AvgAccuracy) &&
		close(a.LatencySLO, b.LatencySLO) && close(a.AccuracySLO, b.AccuracySLO) &&
		close(a.FeasibleFraction, b.FeasibleFraction) && close(a.AvgHitRatio, b.AvgHitRatio) &&
		close(a.OffChipEnergyJ, b.OffChipEnergyJ)
}

func TestNewClusterValidation(t *testing.T) {
	if _, err := NewCluster(nil, nil); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := NewCluster([]*System{nil}, nil); err == nil {
		t.Error("nil replica accepted")
	}
}

func TestClusterRoundRobinPartition(t *testing.T) {
	c := newCluster(t, 3, Full, NewRoundRobin())
	qs := clusterWorkload(t, c, 30)
	rs, err := c.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 30 {
		t.Fatalf("served %d, want 30", len(rs))
	}
	for i, r := range rs {
		if r.SubNet == "" {
			t.Fatalf("query %d has empty outcome", i)
		}
		if r.Query.ID != qs[i].ID {
			t.Fatalf("result %d out of order: query %d", i, r.Query.ID)
		}
	}
	for i, rep := range c.Replicas() {
		if rep.Queries() != 10 {
			t.Errorf("replica %d served %d, want 10", i, rep.Queries())
		}
		if rep.QueueDepth() != 0 {
			t.Errorf("replica %d queue depth %d after drain", i, rep.QueueDepth())
		}
	}
	if got := c.Stats().Queries; got != 30 {
		t.Errorf("cluster stats fold %d queries, want 30", got)
	}
}

// TestClusterDeterministicUnderSeededRouter runs the same stream twice
// through fresh clusters with a seeded random router: per-replica
// summaries must match exactly.
func TestClusterDeterministicUnderSeededRouter(t *testing.T) {
	run := func() []Summary {
		c := newCluster(t, 3, Full, NewRandom(42))
		qs := clusterWorkload(t, c, 60)
		if _, err := c.ServeAll(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
		out := make([]Summary, 0, c.Size())
		for _, rep := range c.Replicas() {
			out = append(out, rep.Summary())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Errorf("replica %d summaries diverge:\n%v\n%v", i, a[i], b[i])
		}
	}
}

func TestClusterStatsMatchSummarize(t *testing.T) {
	c := newCluster(t, 2, Full, NewRoundRobin())
	qs := clusterWorkload(t, c, 20)
	rs, err := c.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	got, want := c.Stats(), Summarize(rs)
	if !summariesClose(got, want) {
		t.Errorf("folded stats diverge from Summarize:\n%v\n%v", got, want)
	}
}

func TestLeastLoadedAvoidsBusyReplica(t *testing.T) {
	c := newCluster(t, 2, Full, NewLeastLoaded())
	// Pin load on replica 0: reservations count as depth.
	c.Replicas()[0].reserve()
	defer c.Replicas()[0].done()
	q := clusterWorkload(t, c, 1)[0]
	if _, err := c.Serve(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if got := c.Replicas()[1].Queries(); got != 1 {
		t.Errorf("least-loaded routed to the busy replica (replica 1 served %d)", got)
	}
}

// TestAffinityRoutesToCoveringReplica uses StateUnaware replicas (their
// caches never change) with distinct cached SubGraphs: every query must
// land on the replica whose cache best covers the SubNet it would serve,
// so the served hit ratio can never fall below the other replica's.
func TestAffinityRoutesToCoveringReplica(t *testing.T) {
	c := newCluster(t, 4, StateUnaware, NewAffinity())
	qs := clusterWorkload(t, c, 40)
	for _, q := range qs {
		res, err := c.Serve(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		// Recompute the best available overlap across replicas for the
		// SubNet actually served; affinity must have achieved it.
		best := -1.0
		for _, rep := range c.Replicas() {
			rep.Inspect(func(sys *System) {
				sn := sys.Table().SubNets[res.Row]
				if cached := sys.Simulator().Cached(); cached != nil {
					if ov := supernet.Overlap(sn.Graph, cached); ov > best {
						best = ov
					}
				}
			})
		}
		if res.HitRatio < best-1e-9 {
			t.Fatalf("affinity served hit %.4f, best available %.4f", res.HitRatio, best)
		}
	}
	if got := c.Stats().Queries; got != len(qs) {
		t.Fatalf("stats fold %d queries, want %d", got, len(qs))
	}
}

func TestClusterServeStreamDrains(t *testing.T) {
	c := newCluster(t, 3, Full, NewLeastLoaded())
	qs := clusterWorkload(t, c, 50)
	in := make(chan sched.Query)
	go func() {
		for _, q := range qs {
			in <- q
		}
		close(in)
	}()
	n := 0
	for r := range c.ServeStream(context.Background(), in) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Replica < 0 || r.Replica >= c.Size() {
			t.Fatalf("bad replica id %d", r.Replica)
		}
		n++
	}
	if n != 50 {
		t.Fatalf("stream yielded %d results, want 50", n)
	}
	for i, rep := range c.Replicas() {
		if rep.QueueDepth() != 0 {
			t.Errorf("replica %d queue depth %d after stream close", i, rep.QueueDepth())
		}
	}
}

func TestClusterServeStreamCancel(t *testing.T) {
	c := newCluster(t, 2, Full, NewRoundRobin())
	qs := clusterWorkload(t, c, 100)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan sched.Query)
	go func() {
		defer close(in)
		for _, q := range qs {
			select {
			case in <- q:
			case <-ctx.Done():
				return
			}
		}
	}()
	out := c.ServeStream(ctx, in)
	for i := 0; i < 5; i++ {
		if r, ok := <-out; !ok || r.Err != nil {
			t.Fatalf("early result %d: ok=%v err=%v", i, ok, r.Err)
		}
	}
	cancel()
	// The channel must close promptly — workers drain, nothing leaks.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				for i, rep := range c.Replicas() {
					if rep.QueueDepth() != 0 {
						t.Errorf("replica %d queue depth %d after cancel", i, rep.QueueDepth())
					}
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not drain after cancel")
		}
	}
}

func TestClusterServeAllCancelled(t *testing.T) {
	c := newCluster(t, 2, Full, NewRoundRobin())
	qs := clusterWorkload(t, c, 10)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.ServeAll(ctx, qs); err == nil {
		t.Error("cancelled ServeAll returned no error")
	}
	for i, rep := range c.Replicas() {
		if rep.QueueDepth() != 0 {
			t.Errorf("replica %d queue depth %d after cancelled ServeAll", i, rep.QueueDepth())
		}
	}
}

func TestServeContextDeadlineTightensBudget(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := sys.ServeContext(ctx, sched.Query{ID: 0, MinAccuracy: 0, MaxLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.MaxLatency > 0.05+1e-9 {
		t.Errorf("deadline did not tighten MaxLatency: %.3fs", res.Query.MaxLatency)
	}
	expired, cancelExp := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancelExp()
	time.Sleep(time.Millisecond)
	if _, err := sys.ServeContext(expired, sched.Query{ID: 1, MaxLatency: 1}); err == nil {
		t.Error("expired context served")
	}
}

func TestAccumulatorMatchesSummarize(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	qs, err := workload.Uniform(25, accRange(sys), latRange(sys), 3)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	var a, b Accumulator
	for _, r := range rs[:10] {
		a.Add(r)
	}
	for _, r := range rs[10:] {
		b.Add(r)
	}
	merged := a.Snapshot()
	merged.Merge(&b)
	if got, want := merged.Summary(), Summarize(rs); !summariesClose(got, want) {
		t.Errorf("accumulator fold diverges from Summarize:\n%v\n%v", got, want)
	}
}

func TestSharedTableMatchesPerReplicaBuild(t *testing.T) {
	s, fr := fixtures(t, supernet.MobileNetV3)
	opt := Options{
		Accel: accel.ZCU104(), Policy: sched.StrictLatency,
		Q: 4, Mode: Full, Candidates: 12, Seed: 1,
	}
	own, err := New(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	table, _, err := BuildTable(s, fr, opt)
	if err != nil {
		t.Fatal(err)
	}
	shared := opt
	shared.Table = table
	sysShared, err := New(s, fr, shared)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := workload.Uniform(20, accRange(own), latRange(own), 5)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := own.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := sysShared.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !summariesClose(Summarize(ra), Summarize(rb)) {
		t.Error("shared-table system diverges from per-system build")
	}
}

func TestAccumulatorReservoirBounded(t *testing.T) {
	var a, b Accumulator
	for i := 0; i < 3*maxLatencySamples; i++ {
		r := Served{Latency: float64(i%100) * 1e-3, LatencyMet: true}
		a.Add(r)
		b.Add(r)
	}
	if len(a.lats.xs) != maxLatencySamples {
		t.Fatalf("reservoir holds %d samples, want cap %d", len(a.lats.xs), maxLatencySamples)
	}
	sa, sb := a.Summary(), b.Summary()
	if !reflect.DeepEqual(sa, sb) {
		t.Error("identical add orders produced different summaries (reservoir not deterministic)")
	}
	if sa.Queries != 3*maxLatencySamples || sa.LatencySLO != 1 {
		t.Errorf("exact aggregates wrong: %+v", sa)
	}
	// Percentiles stay plausible under sampling: latencies are uniform
	// over [0, 99] ms, so P50 must land well inside the range.
	if sa.P50Latency < 20e-3 || sa.P50Latency > 80e-3 {
		t.Errorf("sampled P50 %.1f ms implausible for uniform [0,99] ms", sa.P50Latency*1e3)
	}
}

func TestMergeWeightsReservoirsByTraffic(t *testing.T) {
	// Replica A: heavy traffic, fast (1 ms). Replica B: 100 queries,
	// slow (100 ms) — 0.5% of traffic. Unweighted concatenation would
	// let B's 100 samples own the merged P99; traffic weighting must
	// keep both P50 and P99 at A's latency.
	var a, b Accumulator
	for i := 0; i < 5*maxLatencySamples; i++ {
		a.Add(Served{Latency: 1e-3})
	}
	for i := 0; i < 100; i++ {
		b.Add(Served{Latency: 100e-3})
	}
	m := a.Snapshot()
	m.Merge(&b)
	sum := m.Summary()
	if sum.Queries != 5*maxLatencySamples+100 {
		t.Fatalf("merged %d queries", sum.Queries)
	}
	if sum.P50Latency > 2e-3 || sum.P99Latency > 2e-3 {
		t.Errorf("merged percentiles not traffic-weighted: p50=%.1fms p99=%.1fms",
			sum.P50Latency*1e3, sum.P99Latency*1e3)
	}
}

func TestAffinityScoreLockFree(t *testing.T) {
	c := newCluster(t, 2, Full, NewAffinity())
	rep := c.Replicas()[0]
	q := clusterWorkload(t, c, 1)[0]
	// Score while the replica lock is held: must not block (the old
	// implementation dead-locked here by taking the replica mutex).
	done := make(chan float64, 1)
	rep.Inspect(func(*System) {
		go func() { done <- rep.AffinityScore(q) }()
		select {
		case s := <-done:
			if s < 0 || s > 1 {
				t.Errorf("affinity score %.3f outside [0,1]", s)
			}
		case <-time.After(2 * time.Second):
			t.Error("AffinityScore blocked on the replica lock")
		}
	})
}
