package serving

import (
	"fmt"
	"sync"
	"sync/atomic"

	"sushi/internal/accel"
	"sushi/internal/latencytable"
	"sushi/internal/supernet"
)

// forceSlowPath is the process-wide escape hatch behind the
// `sushi-bench -slowpath` flag: when set, every System built afterwards
// runs the original unmemoized scan implementation of every scheduling
// and routing decision (Options.SlowPath on each New). It is a
// build-time switch, not a live one — systems already built keep the
// path they were born with.
var forceSlowPath atomic.Bool

// SetForceSlowPath flips the process-wide slow-path switch.
func SetForceSlowPath(v bool) { forceSlowPath.Store(v) }

// ForceSlowPath reports the process-wide slow-path switch.
func ForceSlowPath() bool { return forceSlowPath.Load() }

// buildKey identifies one memoizable table build. Only the Options
// fields that influence the build participate (Accel, Mode, Candidates
// after defaulting, Seed); the supernet and frontier are identified by
// pointer — the core layer memoizes frontier derivation per workload,
// so equal workloads present pointer-equal inputs, and distinct
// frontiers can never collide. The budgets ladder is folded in as its
// canonical printed form.
type buildKey struct {
	super      *supernet.SuperNet
	frontier0  *supernet.SubNet
	frontierN  int
	mode       Mode
	candidates int
	seed       int64
	accel      accel.Config
	budgets    string
}

// buildEntry is one memoized build; once gates the single derivation so
// concurrent harness workers requesting the same table block on one
// build instead of racing duplicates.
type buildEntry struct {
	once  sync.Once
	table *latencytable.Table
	cfg   accel.Config
	err   error
}

// buildCacheCap bounds the build memo; a process constructing an
// unbounded stream of distinct supernets (tests, fuzzing) falls back to
// uncached builds instead of growing the map forever.
const buildCacheCap = 64

var (
	buildMu sync.Mutex
	builds  map[buildKey]*buildEntry
)

// buildTableCached memoizes buildTableUncached/buildTenantTableUncached
// by build parameters. Builds are deterministic (column workers write
// by index; candidate generation is seeded), so a memoized table is
// value-identical to a fresh one — callers share it the same way
// cluster replicas already share one table via Options.Table.
func buildTableCached(super *supernet.SuperNet, frontier []*supernet.SubNet, opt Options, budgets []int64) (*latencytable.Table, accel.Config, error) {
	if opt.Candidates <= 0 {
		opt.Candidates = 16
	}
	key := buildKey{
		super:      super,
		frontierN:  len(frontier),
		mode:       opt.Mode,
		candidates: opt.Candidates,
		seed:       opt.Seed,
		accel:      opt.Accel,
	}
	if len(frontier) > 0 {
		key.frontier0 = frontier[0]
	}
	if len(budgets) > 0 {
		key.budgets = fmt.Sprint(budgets)
	}
	buildMu.Lock()
	e := builds[key]
	if e == nil {
		if builds == nil {
			builds = make(map[buildKey]*buildEntry)
		}
		if len(builds) >= buildCacheCap {
			buildMu.Unlock()
			if len(budgets) > 0 {
				return buildTenantTableUncached(super, frontier, opt, budgets)
			}
			return buildTableUncached(super, frontier, opt)
		}
		e = &buildEntry{}
		builds[key] = e
	}
	buildMu.Unlock()
	e.once.Do(func() {
		if len(budgets) > 0 {
			e.table, e.cfg, e.err = buildTenantTableUncached(super, frontier, opt, budgets)
		} else {
			e.table, e.cfg, e.err = buildTableUncached(super, frontier, opt)
		}
	})
	return e.table, e.cfg, e.err
}
