package serving

import (
	"context"
	"sync"
	"testing"
	"time"

	"sushi/internal/sched"
)

func TestBatchPolicyValidate(t *testing.T) {
	if err := (BatchPolicy{}).Validate(); err != nil {
		t.Errorf("zero policy rejected: %v", err)
	}
	if err := (BatchPolicy{MaxBatch: -1}).Validate(); err == nil {
		t.Error("negative MaxBatch accepted")
	}
	if err := (BatchPolicy{MaxBatch: 2, Window: -time.Millisecond}).Validate(); err == nil {
		t.Error("negative Window accepted")
	}
	for _, p := range []BatchPolicy{{}, {MaxBatch: 1, Window: time.Second}, {MaxBatch: 4}} {
		if p.Enabled() {
			t.Errorf("%+v reports enabled", p)
		}
	}
	if !(BatchPolicy{MaxBatch: 2, Window: time.Millisecond}).Enabled() {
		t.Error("valid policy reports disabled")
	}
}

// TestLiveBatchingConcurrent drives concurrent Serve calls through the
// live batch former under the race detector: every query must come back
// served, the accumulators must balance, queue depths must drain to
// zero, and — with identical constraints and a generous window — at
// least one flush must actually group queries.
func TestLiveBatchingConcurrent(t *testing.T) {
	c := newCluster(t, 2, Full, NewRoundRobin())
	if err := c.EnableBatching(BatchPolicy{MaxBatch: 4, Window: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var sys *System
	c.Replicas()[0].Inspect(func(s *System) { sys = s })
	budget := sys.Table().Lookup(sys.Table().Rows()-1, 0) * 2

	const n = 64
	var wg sync.WaitGroup
	outs := make([]Served, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Identical constraints: every query resolves to the same
			// SubNet, so concurrent arrivals are compatible.
			outs[i], errs[i] = c.Serve(context.Background(), sched.Query{ID: i, MaxLatency: budget})
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if outs[i].SubNet == "" {
			t.Fatalf("query %d: empty outcome", i)
		}
	}
	stats := c.Stats()
	if stats.Queries != n {
		t.Fatalf("stats folded %d queries, want %d", stats.Queries, n)
	}
	if stats.Batches == 0 {
		t.Fatal("no flushes recorded")
	}
	if stats.MaxBatchSize < 2 {
		t.Errorf("64 concurrent compatible queries never shared a pass (max batch %d)", stats.MaxBatchSize)
	}
	if stats.MaxBatchSize > 4 {
		t.Errorf("max batch %d exceeds policy cap 4", stats.MaxBatchSize)
	}
	for _, rep := range c.Replicas() {
		if d := rep.QueueDepth(); d != 0 {
			t.Errorf("replica %d: queue depth %d after drain", rep.ID(), d)
		}
	}
}

// TestLiveBatchingSharedLatency: members of one live flush share the
// batch's total latency and the batch size is recorded on each.
func TestLiveBatchingSharedLatency(t *testing.T) {
	c := newCluster(t, 1, Full, NewRoundRobin())
	if err := c.EnableBatching(BatchPolicy{MaxBatch: 2, Window: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var sys *System
	c.Replicas()[0].Inspect(func(s *System) { sys = s })
	budget := sys.Table().Lookup(sys.Table().Rows()-1, 0) * 2

	var wg sync.WaitGroup
	outs := make([]Served, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], _ = c.Serve(context.Background(), sched.Query{ID: i, MaxLatency: budget})
		}(i)
	}
	wg.Wait()
	if outs[0].Batch == 2 || outs[1].Batch == 2 {
		// The two landed in one flush (likely with a 50ms window): they
		// must agree on everything the pass shares.
		if outs[0].Batch != outs[1].Batch || outs[0].Latency != outs[1].Latency ||
			outs[0].SubNet != outs[1].SubNet {
			t.Errorf("flush members disagree: %+v vs %+v", outs[0], outs[1])
		}
	}
}

// TestLiveBatchingCancellation: a caller abandoning the wait must not
// wedge the former or leak the reservation.
func TestLiveBatchingCancellation(t *testing.T) {
	c := newCluster(t, 1, Full, NewRoundRobin())
	if err := c.EnableBatching(BatchPolicy{MaxBatch: 8, Window: 30 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Serve(ctx, sched.Query{ID: 0, MaxLatency: 1}); err == nil {
		t.Fatal("cancelled context served")
	}
	// An expired deadline fails fast too.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := c.Serve(dctx, sched.Query{ID: 1, MaxLatency: 1}); err == nil {
		t.Fatal("expired deadline served")
	}
	// Cancel mid-wait: the flusher must skip the query and release it.
	mctx, mcancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Serve(mctx, sched.Query{ID: 2, MaxLatency: 1})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	mcancel()
	if err := <-done; err == nil {
		t.Fatal("mid-wait cancellation served")
	}
	// Wait out the window so the flusher runs and drains.
	time.Sleep(60 * time.Millisecond)
	if d := c.Replicas()[0].QueueDepth(); d != 0 {
		t.Errorf("queue depth %d after cancellations", d)
	}
	// The former still works afterwards.
	var sys *System
	c.Replicas()[0].Inspect(func(s *System) { sys = s })
	budget := sys.Table().Lookup(sys.Table().Rows()-1, 0) * 2
	if _, err := c.Serve(context.Background(), sched.Query{ID: 3, MaxLatency: budget}); err != nil {
		t.Fatalf("serve after cancellations: %v", err)
	}
}

// TestBatchingDisabledPathUntouched: a cluster without EnableBatching
// (or with a non-enabled policy) serves through the classic per-query
// path — no occupancy stats appear.
func TestBatchingDisabledPathUntouched(t *testing.T) {
	c := newCluster(t, 1, Full, NewRoundRobin())
	if err := c.EnableBatching(BatchPolicy{MaxBatch: 1, Window: time.Hour}); err != nil {
		t.Fatal(err)
	}
	if c.BatchPolicy().Enabled() {
		t.Fatal("B=1 policy reports enabled")
	}
	qs := clusterWorkload(t, c, 8)
	for _, q := range qs {
		if _, err := c.Serve(context.Background(), q); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Batches != 0 || st.MaxBatchSize != 0 {
		t.Errorf("unbatched cluster reported occupancy: %+v", st)
	}
}

// TestLiveBatchingMixedPolicies: queries with different effective
// policies landing in one flush must NOT share a pass (ScheduleBatch
// rejects mixed-policy batches) — the former splits them into
// per-policy groups and every caller still succeeds.
func TestLiveBatchingMixedPolicies(t *testing.T) {
	c := newCluster(t, 1, Full, NewRoundRobin())
	if err := c.EnableBatching(BatchPolicy{MaxBatch: 8, Window: 25 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	var sys *System
	c.Replicas()[0].Inspect(func(s *System) { sys = s })
	budget := sys.Table().Lookup(sys.Table().Rows()-1, 0) * 2

	acc := sched.StrictAccuracy
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := sched.Query{ID: i, MaxLatency: budget}
			if i%2 == 1 {
				// Override to strict accuracy with a trivial floor: the
				// same fastest SubNet row, but a different policy.
				q.Policy = &acc
			}
			_, errs[i] = c.Serve(context.Background(), q)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("query %d failed in a mixed-policy flush: %v", i, err)
		}
	}
	if st := c.Stats(); st.Queries != 8 {
		t.Fatalf("stats folded %d queries, want 8", st.Queries)
	}
}
