package serving

// The timed queueing semantics (FIFO invariants, overload behaviour,
// drop/load-aware policies, upfront validation) are exercised where they
// now live: internal/simq. Only the summary fold stays here.

import "testing"

func TestSummarizeTimed(t *testing.T) {
	rs := []TimedServed{
		{Served: Served{Accuracy: 80, LatencyMet: true}, QueueDelay: 0.1, E2ELatency: 0.3},
		{Served: Served{Accuracy: 70, LatencyMet: false}, QueueDelay: 0.3, E2ELatency: 0.5},
		{Dropped: true, QueueDelay: 0.4, E2ELatency: 0.4},
	}
	s := SummarizeTimed(rs)
	if s.Queries != 3 || s.ServedCount != 2 || s.Dropped != 1 {
		t.Fatalf("counts %+v", s)
	}
	if s.AvgAccuracy != 75 {
		t.Errorf("avg accuracy %g over served only, want 75", s.AvgAccuracy)
	}
	if s.AvgE2E != 0.4 || s.AvgQueueDelay != 0.2 {
		t.Errorf("avg e2e %g queue %g", s.AvgE2E, s.AvgQueueDelay)
	}
	// One of three queries met its budget; drops count as misses.
	if want := 1.0 / 3; s.E2ESLO != want {
		t.Errorf("E2E SLO %g, want %g", s.E2ESLO, want)
	}
}

func TestSummarizeTimedEmpty(t *testing.T) {
	if s := SummarizeTimed(nil); s.Queries != 0 || s.E2ESLO != 0 {
		t.Errorf("empty summary %+v", s)
	}
}
