package serving

import (
	"math"
	"testing"

	"sushi/internal/accel"
	"sushi/internal/sched"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// timedStream builds a timed stream at the given arrival rate with fixed
// latency budgets.
func timedStream(t *testing.T, sys *System, n int, rate, budget float64) []TimedQuery {
	t.Helper()
	arr, err := workload.PoissonArrivals(n, rate, 3)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]TimedQuery, n)
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   sched.Query{ID: i, MaxLatency: budget},
			Arrival: arr[i],
		}
	}
	return qs
}

func TestServeTimedFIFOInvariants(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	budget := latRange(sys).Hi
	qs := timedStream(t, sys, 60, 300, budget) // moderate load
	rs, err := sys.ServeTimed(qs, TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 60 {
		t.Fatalf("%d results", len(rs))
	}
	prevFinish := 0.0
	for i, r := range rs {
		if r.Start < r.Arrival-1e-12 {
			t.Fatalf("query %d started before arriving", i)
		}
		if r.Start < prevFinish-1e-12 {
			t.Fatalf("query %d started before the accelerator was free", i)
		}
		if math.Abs(r.QueueDelay-(r.Start-r.Arrival)) > 1e-12 {
			t.Fatalf("query %d queue delay inconsistent", i)
		}
		if math.Abs(r.E2ELatency-(r.Finish-r.Arrival)) > 1e-12 {
			t.Fatalf("query %d e2e inconsistent", i)
		}
		prevFinish = r.Finish
	}
}

func TestServeTimedOverloadBuildsQueue(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	budget := latRange(sys).Hi
	// Far beyond capacity: service ~2-6 ms -> capacity ~200-400 qps; feed 5000 qps.
	over := timedStream(t, sys, 80, 5000, budget)
	rs, err := sys.ServeTimed(over, TimedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sum := SummarizeTimed(rs)
	if sum.AvgQueueDelay <= 0 {
		t.Error("overload produced no queueing delay")
	}
	// Under heavy overload the tail queries must wait many service times.
	if last := rs[len(rs)-1]; last.QueueDelay < 5*budget {
		t.Errorf("tail queue delay %.4f s too small for 25x overload", last.QueueDelay)
	}
	if sum.E2ESLO > 0.6 {
		t.Errorf("E2E SLO %.2f implausibly high under overload", sum.E2ESLO)
	}
}

func TestServeTimedLoadAwareBeatsStatic(t *testing.T) {
	// §1's motivating claim: under transient overload, a static
	// high-accuracy choice misses deadlines/drops queries, while
	// navigating the trade-off space (load-aware SUSHI) keeps serving.
	s, fr := fixtures(t, supernet.MobileNetV3)
	mk := func() *System {
		sys, err := New(s, fr, Options{
			Accel: accel.ZCU104(), Policy: sched.StrictLatency, Q: 4,
			Mode: Full, Candidates: 12, Seed: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	sys := mk()
	budget := latRange(sys).Hi
	qs := timedStream(t, sys, 100, 450, budget) // ~2-3x capacity of the largest SubNet
	// Static: every query demands the top SubNet (MinAccuracy at max) —
	// the "single static point" the paper argues against.
	static := make([]TimedQuery, len(qs))
	copy(static, qs)
	for i := range static {
		static[i].MinAccuracy = fr[len(fr)-1].Accuracy
		static[i].MaxLatency = budget
	}
	staticRs, err := mk().ServeTimed(static, TimedOptions{Drop: true})
	if err != nil {
		t.Fatal(err)
	}
	adaptiveRs, err := mk().ServeTimed(qs, TimedOptions{Drop: true, LoadAware: true})
	if err != nil {
		t.Fatal(err)
	}
	st := SummarizeTimed(staticRs)
	ad := SummarizeTimed(adaptiveRs)
	t.Logf("static-top: SLO %.2f drops %d | load-aware: SLO %.2f drops %d",
		st.E2ESLO, st.Dropped, ad.E2ESLO, ad.Dropped)
	if ad.E2ESLO <= st.E2ESLO {
		t.Errorf("load-aware SLO %.2f !> static-top SLO %.2f", ad.E2ESLO, st.E2ESLO)
	}
	if ad.Dropped >= st.Dropped && st.Dropped > 0 {
		t.Errorf("load-aware dropped %d !< static-top %d", ad.Dropped, st.Dropped)
	}
}

func TestServeTimedDropSemantics(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	// Two queries arriving together with a budget smaller than one
	// service: the second must be dropped when Drop is on.
	budget := latRange(sys).Lo * 0.5
	qs := []TimedQuery{
		{Query: sched.Query{ID: 0, MaxLatency: budget}, Arrival: 0},
		{Query: sched.Query{ID: 1, MaxLatency: budget}, Arrival: 0},
	}
	rs, err := sys.ServeTimed(qs, TimedOptions{Drop: true})
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Dropped {
		t.Error("first query dropped")
	}
	if !rs[1].Dropped {
		t.Error("second query not dropped despite exhausted budget")
	}
	sum := SummarizeTimed(rs)
	if sum.Dropped != 1 || sum.ServedCount != 1 {
		t.Errorf("summary %+v", sum)
	}
}

func TestServeTimedValidation(t *testing.T) {
	sys := newSystem(t, supernet.MobileNetV3, Full, sched.StrictLatency)
	qs := []TimedQuery{{Query: sched.Query{ID: 0, MaxLatency: 1}, Arrival: -1}}
	if _, err := sys.ServeTimed(qs, TimedOptions{}); err == nil {
		t.Error("negative arrival accepted")
	}
}

func TestSummarizeTimedEmpty(t *testing.T) {
	if s := SummarizeTimed(nil); s.Queries != 0 || s.E2ESLO != 0 {
		t.Errorf("empty summary %+v", s)
	}
}
