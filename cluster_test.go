package sushi

import (
	"context"
	"errors"
	"testing"
	"time"

	"sushi/internal/core"
)

func testCluster(t *testing.T, r int, router RouterKind) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
		WithReplicas(r), WithRouter(router))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster(Options{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 || c.Router() != "round-robin" {
		t.Fatalf("defaults: %d replicas, router %s", c.Size(), c.Router())
	}
	if _, err := NewCluster(Options{}, WithRouter("telepathy")); err == nil {
		t.Error("bogus router accepted")
	}
	var oe *core.OptionError
	if _, err := NewCluster(Options{}, WithReplicas(-1)); !errors.As(err, &oe) {
		t.Errorf("negative replicas: got %v, want *core.OptionError", err)
	}
}

func TestClusterServeAllAcrossReplicas(t *testing.T) {
	c := testCluster(t, 4, RoundRobin)
	qs, err := UniformWorkload(40, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 40 {
		t.Fatalf("served %d", len(rs))
	}
	reps := c.Replicas()
	if len(reps) != 4 {
		t.Fatalf("%d replica views", len(reps))
	}
	for _, r := range reps {
		if r.Queries != 10 {
			t.Errorf("replica %d served %d, want 10 under round-robin", r.ID, r.Queries)
		}
		if r.Cache.Name == "" || !r.Cache.HasBuffer {
			t.Errorf("replica %d has no visible Persistent Buffer state: %+v", r.ID, r.Cache)
		}
	}
	// Distinct initial columns: at least two distinct cached SubGraphs
	// should remain visible across 4 replicas.
	names := map[string]bool{}
	for _, r := range reps {
		names[r.Cache.Name] = true
	}
	if len(names) < 2 {
		t.Errorf("replica caches collapsed to one SubGraph: %v", names)
	}
	if got := c.Stats().Queries; got != 40 {
		t.Errorf("stats fold %d queries", got)
	}
	if len(c.Frontier()) != 7 {
		t.Errorf("frontier %d entries", len(c.Frontier()))
	}
}

func TestClusterServeStream(t *testing.T) {
	c := testCluster(t, 3, LeastLoaded)
	qs, err := UniformWorkload(30, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 13)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan Query)
	go func() {
		defer close(in)
		for _, q := range qs {
			in <- q
		}
	}()
	n := 0
	for r := range c.ServeStream(context.Background(), in) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		n++
	}
	if n != 30 {
		t.Fatalf("stream yielded %d results", n)
	}
}

func TestClusterContextDeadline(t *testing.T) {
	c := testCluster(t, 2, RoundRobin)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := c.Serve(ctx, Query{ID: 0, MinAccuracy: 0, MaxLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.MaxLatency > 0.05+1e-9 {
		t.Errorf("deadline did not tighten the latency budget: %.3fs", res.Query.MaxLatency)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := c.Serve(cancelled, Query{ID: 1, MaxLatency: 1}); err == nil {
		t.Error("cancelled context served")
	}
}

func TestClusterAffinityBeatsRandomOnHitRatio(t *testing.T) {
	// The affinity router's whole point: more cross-query SGS reuse than
	// oblivious dispatch on the same stream.
	qs, err := UniformWorkload(80, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 17)
	if err != nil {
		t.Fatal(err)
	}
	serve := func(router RouterKind) float64 {
		t.Helper()
		c := testCluster(t, 4, router)
		if _, err := c.ServeAll(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
		return c.Stats().AvgHitRatio
	}
	aff, rnd := serve(Affinity), serve(RandomRouter)
	if aff < rnd {
		t.Errorf("affinity hit ratio %.4f below random %.4f", aff, rnd)
	}
}

func TestClusterSimulatePublicAPI(t *testing.T) {
	c := testCluster(t, 2, LeastLoaded)
	// Budget wide enough for the slowest SubNet; rate ~3x the 2-replica
	// aggregate capacity so queueing and admission control both engage.
	budget := 8e-3
	arr, err := (Poisson{Rate: 2 / budget * 3}).Times(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, len(arr))
	for i := range qs {
		qs[i] = Query{ID: i, MaxLatency: budget}
	}
	ts, err := TimedStream(qs, arr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Simulate(ts, SimOptions{
		QueueCap:  4,
		Admission: AdmitDegrade,
		LoadAware: true,
		Drop:      true,
		Router:    LeastLoaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 100 || res.Served+res.Dropped != 100 {
		t.Fatalf("accounting off: %+v", res)
	}
	if res.Summary.P99E2E < res.Summary.P50E2E {
		t.Errorf("tail below median: %+v", res.Summary)
	}
	if res.Summary.Goodput <= 0 {
		t.Errorf("goodput missing: %+v", res.Summary)
	}
	if res.Degraded == 0 {
		t.Error("3x overload with cap 4 never degraded")
	}
	if _, err := c.Simulate(ts, SimOptions{Router: "carousel"}); err == nil {
		t.Error("bogus router accepted")
	}
}
