package sushi

import (
	"context"
	"errors"
	"testing"
	"time"

	"sushi/internal/core"
)

func testCluster(t *testing.T, r int, router RouterKind) *Cluster {
	t.Helper()
	c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
		WithReplicas(r), WithRouter(router))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster(Options{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 1 || c.Router() != "round-robin" {
		t.Fatalf("defaults: %d replicas, router %s", c.Size(), c.Router())
	}
	if _, err := NewCluster(Options{}, WithRouter("telepathy")); err == nil {
		t.Error("bogus router accepted")
	}
	var oe *core.OptionError
	if _, err := NewCluster(Options{}, WithReplicas(-1)); !errors.As(err, &oe) {
		t.Errorf("negative replicas: got %v, want *core.OptionError", err)
	}
}

func TestClusterServeAllAcrossReplicas(t *testing.T) {
	c := testCluster(t, 4, RoundRobin)
	qs, err := UniformWorkload(40, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 11)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 40 {
		t.Fatalf("served %d", len(rs))
	}
	reps := c.Replicas()
	if len(reps) != 4 {
		t.Fatalf("%d replica views", len(reps))
	}
	for _, r := range reps {
		if r.Queries != 10 {
			t.Errorf("replica %d served %d, want 10 under round-robin", r.ID, r.Queries)
		}
		if r.Cache.Name == "" || !r.Cache.HasBuffer {
			t.Errorf("replica %d has no visible Persistent Buffer state: %+v", r.ID, r.Cache)
		}
	}
	// Distinct initial columns: at least two distinct cached SubGraphs
	// should remain visible across 4 replicas.
	names := map[string]bool{}
	for _, r := range reps {
		names[r.Cache.Name] = true
	}
	if len(names) < 2 {
		t.Errorf("replica caches collapsed to one SubGraph: %v", names)
	}
	if got := c.Stats().Queries; got != 40 {
		t.Errorf("stats fold %d queries", got)
	}
	if len(c.Frontier()) != 7 {
		t.Errorf("frontier %d entries", len(c.Frontier()))
	}
}

func TestClusterServeStream(t *testing.T) {
	c := testCluster(t, 3, LeastLoaded)
	qs, err := UniformWorkload(30, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 13)
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan Query)
	go func() {
		defer close(in)
		for _, q := range qs {
			in <- q
		}
	}()
	n := 0
	for r := range c.ServeStream(context.Background(), in) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		n++
	}
	if n != 30 {
		t.Fatalf("stream yielded %d results", n)
	}
}

func TestClusterContextDeadline(t *testing.T) {
	c := testCluster(t, 2, RoundRobin)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res, err := c.Serve(ctx, Query{ID: 0, MinAccuracy: 0, MaxLatency: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Query.MaxLatency > 0.05+1e-9 {
		t.Errorf("deadline did not tighten the latency budget: %.3fs", res.Query.MaxLatency)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	if _, err := c.Serve(cancelled, Query{ID: 1, MaxLatency: 1}); err == nil {
		t.Error("cancelled context served")
	}
}

func TestClusterAffinityBeatsRandomOnHitRatio(t *testing.T) {
	// The affinity router's whole point: more cross-query SGS reuse than
	// oblivious dispatch on the same stream.
	qs, err := UniformWorkload(80, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 17)
	if err != nil {
		t.Fatal(err)
	}
	serve := func(router RouterKind) float64 {
		t.Helper()
		c := testCluster(t, 4, router)
		if _, err := c.ServeAll(context.Background(), qs); err != nil {
			t.Fatal(err)
		}
		return c.Stats().AvgHitRatio
	}
	aff, rnd := serve(Affinity), serve(RandomRouter)
	if aff < rnd {
		t.Errorf("affinity hit ratio %.4f below random %.4f", aff, rnd)
	}
}

func TestClusterSimulatePublicAPI(t *testing.T) {
	c := testCluster(t, 2, LeastLoaded)
	// Budget wide enough for the slowest SubNet; rate ~3x the 2-replica
	// aggregate capacity so queueing and admission control both engage.
	budget := 8e-3
	arr, err := (Poisson{Rate: 2 / budget * 3}).Times(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, len(arr))
	for i := range qs {
		qs[i] = Query{ID: i, MaxLatency: budget}
	}
	ts, err := TimedStream(qs, arr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Simulate(ts, SimOptions{
		QueueCap:  4,
		Admission: AdmitDegrade,
		LoadAware: true,
		Drop:      true,
		Router:    LeastLoaded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 100 || res.Served+res.Dropped != 100 {
		t.Fatalf("accounting off: %+v", res)
	}
	if res.Summary.P99E2E < res.Summary.P50E2E {
		t.Errorf("tail below median: %+v", res.Summary)
	}
	if res.Summary.Goodput <= 0 {
		t.Errorf("goodput missing: %+v", res.Summary)
	}
	if res.Degraded == 0 {
		t.Error("3x overload with cap 4 never degraded")
	}
	if _, err := c.Simulate(ts, SimOptions{Router: "carousel"}); err == nil {
		t.Error("bogus router accepted")
	}
}

// heteroStream is a drifting-budget bursty stream: budgets tighten over
// the stream so the served SubNet mix drifts from large to small.
func heteroStream(t *testing.T, n int) []TimedQuery {
	t.Helper()
	arr, err := (OnOff{OnRate: 1500, OffRate: 250, MeanOn: 0.05, MeanOff: 0.08}).Times(n, 7)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := DriftingWorkload(n, Range{}, Range{},
		Range{Lo: 5.5e-3, Hi: 7e-3}, Range{Lo: 1.5e-3, Hi: 2.5e-3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := TimedStream(qs, arr)
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestClusterHomogeneousHardwareBitIdentical pins the compatibility
// half of the heterogeneity change: a homogeneous fleet declared via
// WithHardware (the new per-replica path) must reproduce the plain
// WithReplicas deployment bit-for-bit per seed, and so must a fleet
// with re-caching left disabled.
func TestClusterHomogeneousHardwareBitIdentical(t *testing.T) {
	ts := heteroStream(t, 80)
	run := func(opts ...ClusterOption) *SimResult {
		c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Simulate(ts, SimOptions{LoadAware: true, Drop: true, Router: LeastLoaded})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(WithReplicas(2))
	hw := run(WithHardware(ZCU104(), ZCU104()))
	if len(plain.Outcomes) != len(hw.Outcomes) {
		t.Fatalf("outcome counts differ: %d vs %d", len(plain.Outcomes), len(hw.Outcomes))
	}
	for i := range plain.Outcomes {
		if plain.Outcomes[i] != hw.Outcomes[i] {
			t.Fatalf("outcome %d diverged:\nWithReplicas: %+v\nWithHardware: %+v",
				i, plain.Outcomes[i], hw.Outcomes[i])
		}
	}
	if hw.Recaches != 0 || hw.RecacheSec != 0 {
		t.Errorf("re-caching disabled but charged: %d switches / %g s", hw.Recaches, hw.RecacheSec)
	}
}

// TestClusterMixedFleetSimulate is the tentpole acceptance path through
// the public API: a mixed ZCU104+AlveoU50 fleet with per-replica tables
// runs through Cluster.Simulate, enacts at least one modeled cache
// switch, and reports per-replica hardware on the views.
func TestClusterMixedFleetSimulate(t *testing.T) {
	c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
		WithHardware(ZCU104(), ZCU104(), AlveoU50(), AlveoU50()),
		WithRouter(Fastest),
		WithRecache(RecachePolicy{Window: 8, MinGain: 0.01, Cooldown: 8}))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Simulate(heteroStream(t, 200), SimOptions{LoadAware: true, Drop: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 200 || res.Served+res.Dropped != 200 {
		t.Fatalf("accounting off: %+v", res)
	}
	if res.Recaches == 0 {
		t.Error("mixed fleet under drifting budgets never re-cached")
	}
	if res.Recaches > 0 && res.RecacheSec <= 0 {
		t.Errorf("%d re-caches but no charged fill time", res.Recaches)
	}
	names := map[string]int{}
	totalSwitches := 0
	for _, rv := range c.Replicas() {
		names[rv.Accel.Name]++
		totalSwitches += rv.Recaches
	}
	if names["ZCU104"] != 2 || names["AlveoU50"] != 2 {
		t.Errorf("replica hardware views wrong: %v", names)
	}
	if totalSwitches != res.Recaches {
		t.Errorf("replica views count %d switches, run counted %d", totalSwitches, res.Recaches)
	}
}

// TestClusterBatchingPublicAPI exercises WithBatching end to end: the
// cluster policy becomes the default batch former for Simulate, an
// explicit SimOptions.Batching overrides it, and live Serve calls pass
// the batch former (batch telemetry appears even for solo flushes).
func TestClusterBatchingPublicAPI(t *testing.T) {
	c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
		WithReplicas(2), WithRouter(LeastLoaded),
		WithBatching(4, 4*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	budget := 30e-3
	arr, err := (Poisson{Rate: 2 / 8e-3 * 2.5}).Times(120, 5)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]Query, len(arr))
	for i := range qs {
		qs[i] = Query{ID: i, MaxLatency: budget}
	}
	ts, err := TimedStream(qs, arr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Simulate(ts, SimOptions{LoadAware: true, Drop: true, Router: LeastLoaded})
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Batches == 0 || res.Summary.MaxBatchSize < 2 {
		t.Fatalf("Simulate did not inherit WithBatching: %+v", res.Summary)
	}
	for _, o := range res.Outcomes {
		if !o.Dropped && o.Batch < 1 {
			t.Fatalf("served outcome without batch size: %+v", o)
		}
	}
	// Explicit B=1 forces an unbatched run on the batched cluster.
	solo, err := c.Simulate(ts, SimOptions{LoadAware: true, Drop: true, Router: LeastLoaded,
		Batching: Batching{MaxBatch: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if solo.Summary.Batches != 0 {
		t.Errorf("B=1 override still batched: %+v", solo.Summary)
	}
	// And the fixed-load payoff: batching must beat the unbatched run.
	if res.Summary.Goodput <= solo.Summary.Goodput {
		t.Errorf("batched goodput %.1f <= unbatched %.1f", res.Summary.Goodput, solo.Summary.Goodput)
	}
	// Live path: a serve passes the batch former and records occupancy.
	if _, err := c.Serve(context.Background(), Query{ID: 999, MaxLatency: budget}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Batches == 0 {
		t.Errorf("live serve recorded no flush: %+v", st)
	}
	// Validation: a negative batch size is a typed option error.
	if _, err := NewCluster(Options{Workload: MobileNetV3}, WithBatching(-3, time.Millisecond)); err == nil {
		t.Error("negative batch size accepted")
	}
}
