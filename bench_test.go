// Benchmarks regenerating every table and figure of the paper's
// evaluation (DESIGN.md carries the per-experiment index). Each benchmark
// runs the corresponding experiment end to end and reports the paper's
// headline metric via b.ReportMetric, so `go test -bench=.` doubles as a
// reproduction run. Hot-path microbenchmarks at the bottom track the
// per-query costs SUSHI puts on the serving critical path.
package sushi

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"

	"sushi/internal/accel"
	"sushi/internal/core"
	"sushi/internal/latencytable"
	"sushi/internal/sched"
	"sushi/internal/supernet"
	"sushi/internal/workload"
)

// cell parses the leading float of a table cell (strips units).
func cell(b *testing.B, row []string, i int) float64 {
	b.Helper()
	s := strings.TrimSuffix(strings.Fields(row[i])[0], "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", row[i], err)
	}
	return v
}

func BenchmarkFig2ArithmeticIntensity(b *testing.B) {
	for _, w := range []core.Workload{core.ResNet50, core.MobileNetV3} {
		b.Run(string(w), func(b *testing.B) {
			var memBound float64
			for i := 0; i < b.N; i++ {
				r, err := core.Fig2(w)
				if err != nil {
					b.Fatal(err)
				}
				n := 0
				for _, row := range r.Rows {
					if row[4] == "MEMORY" {
						n++
					}
				}
				memBound = float64(n) / float64(len(r.Rows))
			}
			b.ReportMetric(memBound*100, "mem-bound-%")
		})
	}
}

func BenchmarkFig3CachedSubGraphShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.Fig3()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 2 {
			b.Fatal("bad grid")
		}
	}
}

func BenchmarkFig10LatencyBreakdown(b *testing.B) {
	for _, w := range []core.Workload{core.ResNet50, core.MobileNetV3} {
		b.Run(string(w), func(b *testing.B) {
			var maxSave float64
			for i := 0; i < b.N; i++ {
				r, err := core.Fig10(w)
				if err != nil {
					b.Fatal(err)
				}
				maxSave = 0
				for _, row := range r.Rows {
					if s := cell(b, row, 9); s > maxSave {
						maxSave = s
					}
				}
			}
			b.ReportMetric(maxSave, "max-save-%")
		})
	}
}

func BenchmarkFig11Roofline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Fig11(core.ResNet50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12DSE(b *testing.B) {
	for _, w := range []core.Workload{core.ResNet50, core.MobileNetV3} {
		b.Run(string(w), func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				r, err := core.Fig12(w)
				if err != nil {
					b.Fatal(err)
				}
				best = 0
				for _, row := range r.Rows {
					if s := cell(b, row, 5); s > best {
						best = s
					}
				}
			}
			b.ReportMetric(best, "best-save-%")
		})
	}
}

func BenchmarkFig13aBoardLatency(b *testing.B) {
	var speedup float64
	for i := 0; i < b.N; i++ {
		r, err := core.Fig13a()
		if err != nil {
			b.Fatal(err)
		}
		speedup = cell(b, r.Rows[len(r.Rows)-1], 6)
	}
	b.ReportMetric(speedup, "cpu-speedup-x")
}

func BenchmarkFig13bEnergy(b *testing.B) {
	for _, w := range []core.Workload{core.ResNet50, core.MobileNetV3} {
		b.Run(string(w), func(b *testing.B) {
			var maxSave float64
			for i := 0; i < b.N; i++ {
				r, err := core.Fig13b(w)
				if err != nil {
					b.Fatal(err)
				}
				maxSave = 0
				for _, row := range r.Rows {
					if s := cell(b, row, 5); s > maxSave {
						maxSave = s
					}
				}
			}
			b.ReportMetric(maxSave, "max-energy-save-%")
		})
	}
}

func BenchmarkFig14DPUComparison(b *testing.B) {
	var geo float64
	for i := 0; i < b.N; i++ {
		r, err := core.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		logSum := 0.0
		for _, row := range r.Rows {
			logSum += math.Log(cell(b, row, 6))
		}
		geo = math.Exp(logSum / float64(len(r.Rows)))
	}
	b.ReportMetric(geo, "geomean-speedup-x")
}

func BenchmarkFig15SchedFunctional(b *testing.B) {
	for _, p := range []sched.Policy{sched.StrictLatency, sched.StrictAccuracy} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r, err := core.Fig15(core.ResNet50, p, 150)
				if err != nil {
					b.Fatal(err)
				}
				if !strings.Contains(r.Notes[0], "(0 violations)") {
					b.Fatalf("constraint violations: %s", r.Notes[0])
				}
			}
		})
	}
}

func BenchmarkFig16EndToEnd(b *testing.B) {
	for _, w := range []core.Workload{core.ResNet50, core.MobileNetV3} {
		b.Run(string(w), func(b *testing.B) {
			var save float64
			for i := 0; i < b.N; i++ {
				r, err := core.Fig16(w, 150)
				if err != nil {
					b.Fatal(err)
				}
				noPB := cell(b, r.Rows[0], 1)
				full := cell(b, r.Rows[2], 1)
				save = 100 * (1 - full/noPB)
			}
			b.ReportMetric(save, "latency-save-%")
		})
	}
}

func BenchmarkFig17CacheWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.Fig17(core.MobileNetV3, 150)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("bad Q sweep")
		}
	}
}

func BenchmarkTable1BufferBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3BufferSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4ReuseMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Table4(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5TableSize(b *testing.B) {
	var imp float64
	for i := 0; i < b.N; i++ {
		r, err := core.Table5(core.ResNet50, 100)
		if err != nil {
			b.Fatal(err)
		}
		imp = cell(b, r.Rows[len(r.Rows)-1], 3)
	}
	b.ReportMetric(imp, "improvement-%-at-500-cols")
}

func BenchmarkTable6Lookup(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		r, err := core.Table6(core.ResNet50)
		if err != nil {
			b.Fatal(err)
		}
		us = cell(b, r.Rows[len(r.Rows)-1], 1)
	}
	b.ReportMetric(us, "nearest-us-at-max-cols")
}

func BenchmarkHitRatio(b *testing.B) {
	var mob float64
	for i := 0; i < b.N; i++ {
		r, err := core.HitRatioA4(100)
		if err != nil {
			b.Fatal(err)
		}
		mob = cell(b, r.Rows[1], 1)
	}
	b.ReportMetric(mob, "mobv3-hit-ratio")
}

func BenchmarkAblationAveragePredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.AblationAvg(core.MobileNetV3, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Cluster serving ----

// BenchmarkClusterServe measures closed-loop throughput of a replica
// cluster as R grows; queries/sec should scale with R since replicas
// serve in parallel. Later scaling PRs track this number.
func BenchmarkClusterServe(b *testing.B) {
	qs, err := workload.Uniform(256,
		workload.Range{Lo: 76, Hi: 80},
		workload.Range{Lo: 2e-3, Hi: 8e-3}, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, r := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", r), func(b *testing.B) {
			dep, err := core.DeployCluster(core.DeployOptions{
				Workload: core.MobileNetV3,
				Policy:   sched.StrictLatency,
			}, core.ClusterOptions{Replicas: r, Router: core.RouterRoundRobin})
			if err != nil {
				b.Fatal(err)
			}
			ctx := context.Background()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				if _, err := dep.Cluster.ServeAll(ctx, qs); err != nil {
					b.Fatal(err)
				}
			}
			elapsed := time.Since(start).Seconds()
			b.ReportMetric(float64(b.N*len(qs))/elapsed, "queries/sec")
		})
	}
}

// ---- Hot-path microbenchmarks ----

func benchFixture(b *testing.B) (*supernet.SuperNet, []*supernet.SubNet, *latencytable.Table) {
	b.Helper()
	s := supernet.NewOFAResNet50()
	fr, err := s.Frontier()
	if err != nil {
		b.Fatal(err)
	}
	cands, err := latencytable.Candidates(s, fr, latencytable.CandidateOptions{
		Budget: accel.ZCU104().PBBytes, Count: 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	tab, err := latencytable.Build(accel.ZCU104(), fr, cands)
	if err != nil {
		b.Fatal(err)
	}
	return s, fr, tab
}

func BenchmarkSimulatorRun(b *testing.B) {
	_, fr, _ := benchFixture(b)
	sim, err := accel.NewSimulator(accel.ZCU104())
	if err != nil {
		b.Fatal(err)
	}
	sn := fr[len(fr)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sn); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerDecision(b *testing.B) {
	_, _, tab := benchFixture(b)
	s, err := sched.New(tab, sched.Options{Policy: sched.StrictLatency, Q: 4, StateAware: true})
	if err != nil {
		b.Fatal(err)
	}
	lt := tab.Lookup(3, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Schedule(sched.Query{ID: i, MaxLatency: lt}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubGraphIntersect(b *testing.B) {
	_, fr, _ := benchFixture(b)
	a, g := fr[0].Graph, fr[len(fr)-1].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Intersect(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSubGraphIntersectBytes(b *testing.B) {
	_, fr, _ := benchFixture(b)
	a, g := fr[0].Graph, fr[len(fr)-1].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.IntersectBytes(g)
	}
}

func BenchmarkLatencyTableLookup(b *testing.B) {
	_, _, tab := benchFixture(b)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tab.Lookup(i%tab.Rows(), i%tab.Cols())
	}
	_ = sink
}

func BenchmarkNearestGraph(b *testing.B) {
	_, fr, tab := benchFixture(b)
	v := fr[2].Vector()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.NearestGraph(v)
	}
}

func BenchmarkSubNetInstantiate(b *testing.B) {
	s := supernet.NewOFAResNet50()
	spec := s.UniformSpec(3, 1, 0, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Instantiate(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorEncoding(b *testing.B) {
	_, fr, _ := benchFixture(b)
	g := fr[3].Graph
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Vector()
	}
}

func BenchmarkFig9Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := core.Fig9(core.ResNet50)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) < 2 {
			b.Fatal("degenerate timeline")
		}
	}
}

func BenchmarkOverloadServing(b *testing.B) {
	var sloGap float64
	for i := 0; i < b.N; i++ {
		r, err := core.Overload(core.MobileNetV3, 100)
		if err != nil {
			b.Fatal(err)
		}
		// Gap at 3x overload: load-aware SLO minus static SLO.
		sloGap = cell(b, r.Rows[5], 2) - cell(b, r.Rows[4], 2)
	}
	b.ReportMetric(sloGap, "slo-gap-at-3x-%")
}

// BenchmarkOpenLoopSimulate drives the simq discrete-event engine's hot
// path: a 4-replica cluster under 3x-capacity Poisson overload with
// bounded queues, degrade admission and load-aware budget debiting.
// Reported metrics are the open-loop headline numbers (virtual-time p99
// E2E and goodput); ns/op tracks the engine's wall-clock cost per run —
// the whole point of virtual time is that this stays in the
// milliseconds regardless of the simulated load.
func BenchmarkOpenLoopSimulate(b *testing.B) {
	const (
		queries = 400
		budget  = 8e-3
	)
	arr, err := workload.Poisson{Rate: 4 / budget * 3}.Times(queries, 5)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]TimedQuery, queries)
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   Query{ID: i, MaxLatency: budget},
			Arrival: arr[i],
		}
	}
	var p99, goodput float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh cluster per iteration: the engine mutates cache state,
		// and fresh deployments keep every iteration identical.
		c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
			WithReplicas(4), WithRouter(LeastLoaded))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := c.Simulate(qs, SimOptions{
			QueueCap:  8,
			Admission: AdmitDegrade,
			LoadAware: true,
			Drop:      true,
			Router:    LeastLoaded,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
		p99 = res.Summary.P99E2E * 1e3
		goodput = res.Summary.Goodput
	}
	b.ReportMetric(p99, "p99-e2e-ms")
	b.ReportMetric(goodput, "goodput-qps")
	b.ReportMetric(float64(queries), "queries/run")
}

// BenchmarkBatchedSimulate drives SubGraph-stationary micro-batching
// end to end: the same 2.5x-overload Poisson stream through a 2-replica
// cluster, unbatched (B=1) and batched (B=4/B=8 with a half-service
// window). The reported goodput must rise with B at this fixed offered
// load — queries grouped onto one scheduled SubNet pay the weight fetch
// once — while ns/op tracks the flush-event engine's wall-clock cost.
func BenchmarkBatchedSimulate(b *testing.B) {
	const (
		queries = 400
		budget  = 30e-3 // SLO with headroom for a full batch
		svc     = 8e-3  // unbatched slowest-service anchor
	)
	arr, err := workload.Poisson{Rate: 2 / svc * 2.5}.Times(queries, 5)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]TimedQuery, queries)
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   Query{ID: i, MaxLatency: budget},
			Arrival: arr[i],
		}
	}
	goodputs := map[int]float64{}
	for _, batch := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("B=%d", batch), func(b *testing.B) {
			var goodput, p99, avgBatch float64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				// A fresh cluster per iteration: the engine mutates cache
				// state, and fresh deployments keep iterations identical.
				c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
					WithReplicas(2), WithRouter(LeastLoaded))
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := c.Simulate(qs, SimOptions{
					LoadAware: true,
					Drop:      true,
					Router:    LeastLoaded,
					Batching:  Batching{MaxBatch: batch, Window: svc / 2},
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Served == 0 {
					b.Fatal("nothing served")
				}
				goodput = res.Summary.Goodput
				p99 = res.Summary.P99E2E * 1e3
				avgBatch = res.Summary.AvgBatchSize
				if batch == 1 {
					avgBatch = 1
				}
			}
			goodputs[batch] = goodput
			b.ReportMetric(goodput, "goodput-qps")
			b.ReportMetric(p99, "p99-e2e-ms")
			b.ReportMetric(avgBatch, "avg-batch")
		})
	}
	if g1, g4 := goodputs[1], goodputs[4]; g1 > 0 && g4 > 0 && g4 <= g1 {
		b.Errorf("batching did not pay: B=4 goodput %.1f <= B=1 %.1f at fixed load", g4, g1)
	}
}

// BenchmarkHeteroSimulate drives the heterogeneous-fleet path end to
// end: a mixed ZCU104+AlveoU50 cluster (one latency table per hardware
// group), hardware-aware "fastest" routing against per-replica tables,
// and the cache-management layer re-caching as drifting budgets move
// the served SubNet mix — every switch charged in virtual time. ns/op
// tracks the engine's wall-clock cost per simulated run; the reported
// metrics are the heterogeneity headline numbers.
func BenchmarkHeteroSimulate(b *testing.B) {
	const queries = 400
	arr, err := workload.OnOff{OnRate: 1500, OffRate: 250, MeanOn: 0.05, MeanOff: 0.08}.Times(queries, 7)
	if err != nil {
		b.Fatal(err)
	}
	drift, err := workload.Drifting(queries, workload.Range{}, workload.Range{},
		workload.Range{Lo: 5.5e-3, Hi: 7e-3}, workload.Range{Lo: 1.5e-3, Hi: 2.5e-3}, 7)
	if err != nil {
		b.Fatal(err)
	}
	qs, err := TimedStream(drift, arr)
	if err != nil {
		b.Fatal(err)
	}
	var p99 float64
	var recaches int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh fleet per iteration: re-caching mutates cache state, so
		// fresh deployments keep every iteration identical.
		c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
			WithHardware(ZCU104(), ZCU104(), AlveoU50(), AlveoU50()),
			WithRouter(Fastest),
			WithRecache(RecachePolicy{Window: 8, MinGain: 0.01, Cooldown: 8}))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := c.Simulate(qs, SimOptions{LoadAware: true, Drop: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
		p99 = res.Summary.P99E2E * 1e3
		recaches = res.Recaches
	}
	b.ReportMetric(p99, "p99-e2e-ms")
	b.ReportMetric(float64(recaches), "recaches/run")
	b.ReportMetric(float64(queries), "queries/run")
}

// BenchmarkMultiTenantSimulate drives the shared two-model fleet with
// an anti-correlated diurnal mix through the virtual-time engine — the
// consolidation configuration of the multitenant experiment. Fresh
// deployments per iteration keep runs identical (partitioning and
// cache updates mutate accelerator state).
func BenchmarkMultiTenantSimulate(b *testing.B) {
	const queries = 400
	budgets := map[string]float64{"resnet50": 80e-3, "mobilenetv3": 9e-3}
	mix := Mix{}
	for i, model := range []string{"resnet50", "mobilenetv3"} {
		mix.Components = append(mix.Components, MixComponent{
			Model: model,
			Process: Diurnal{
				BaseRate:  1.7 * (2 / (budgets[model] / 1.5)) / 2,
				Amplitude: 1,
				Period:    1.2,
				Phase:     float64(i) * math.Pi,
			},
		})
	}
	times, labels, err := mix.Labeled(queries, 11)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]TimedQuery, queries)
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   Query{ID: i, Model: labels[i], MaxLatency: budgets[labels[i]]},
			Arrival: times[i],
		}
	}
	var goodput float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(Options{Policy: StrictLatency},
			WithModels(ResNet50, MobileNetV3),
			WithReplicas(4),
			WithPartition(PartitionPolicy{Mode: PartitionTraffic}))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := c.Simulate(qs, SimOptions{
			QueueCap: 3, Admission: AdmitReject, LoadAware: true, Drop: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
		goodput = res.Summary.Goodput
	}
	b.ReportMetric(goodput, "goodput-qps")
	b.ReportMetric(float64(queries), "queries/run")
}

// BenchmarkEngineHot is the engine-only microbenchmark: one warm
// 4-replica deployment reused across iterations (no cluster build, no
// fresh tables — the engine's steady state is the subject), a
// 2x-capacity Poisson stream with bounded queues, degrade admission and
// load-aware debiting. Run with -benchmem: allocs/op divided by
// queries/run is the steady-state allocations per simulated query,
// which the zero-alloc hot path keeps near zero. queries/sec is the
// headline raw simulation throughput.
func BenchmarkEngineHot(b *testing.B) {
	const (
		queries = 2000
		budget  = 8e-3
	)
	arr, err := workload.Poisson{Rate: 4 / budget * 2}.Times(queries, 3)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]TimedQuery, queries)
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   Query{ID: i, MaxLatency: budget},
			Arrival: arr[i],
		}
	}
	c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
		WithReplicas(4), WithRouter(LeastLoaded))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Simulate(qs, SimOptions{
			QueueCap:  8,
			Admission: AdmitDegrade,
			LoadAware: true,
			Drop:      true,
			Router:    LeastLoaded,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(queries)*float64(b.N)/secs, "queries/sec")
	}
	b.ReportMetric(float64(queries), "queries/run")
}

// BenchmarkElasticSimulate drives the autoscaled 2..8 fleet with a
// diurnal stream through the virtual-time engine — the elastic half of
// the elastic experiment, with replica lifecycle events (boot fills,
// drains, retirements) on the critical path. Fresh deployments per
// iteration keep runs identical.
func BenchmarkElasticSimulate(b *testing.B) {
	const queries = 500
	proc := Diurnal{BaseRate: 450, Amplitude: 1, Period: 0.55}
	times, err := proc.Times(queries, 7)
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]TimedQuery, queries)
	for i := range qs {
		qs[i] = TimedQuery{
			Query:   Query{ID: i, MaxLatency: 9e-3},
			Arrival: times[i],
		}
	}
	var scaleUps int
	var replicaSeconds float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c, err := NewCluster(Options{Workload: MobileNetV3, Policy: StrictLatency},
			WithRouter(LeastLoaded),
			WithAutoscale(AutoscaleOptions{
				Min: 2, Max: 8, Policy: "utilization", Interval: 10e-3}))
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := c.Simulate(qs, SimOptions{
			QueueCap: 4, Admission: AdmitReject, LoadAware: true, Drop: true})
		if err != nil {
			b.Fatal(err)
		}
		if res.Served == 0 {
			b.Fatal("nothing served")
		}
		if res.ScaleUps == 0 {
			b.Fatal("fleet never scaled")
		}
		scaleUps = res.ScaleUps
		replicaSeconds = res.ReplicaSeconds
	}
	b.ReportMetric(float64(scaleUps), "scale-ups/run")
	b.ReportMetric(replicaSeconds, "replica-s/run")
	b.ReportMetric(float64(queries), "queries/run")
}
