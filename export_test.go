package sushi

// In-package test bridges for the external sushi_test package.
// Compiled only into tests; none of this is public API.

import (
	"sushi/internal/calib"
	"sushi/internal/core"
	"sushi/internal/serving"
)

// ClusterTableForTest returns replica 0's latency table — the exact
// table the deployment decides from, analytic or measured.
func ClusterTableForTest(c *Cluster) *LatencyTable {
	var t *LatencyTable
	c.d.Cluster.Replicas()[0].Inspect(func(s *serving.System) { t = s.Table() })
	return t
}

// AnalyticRoundTripForTest wraps t in the on-disk calibration envelope
// (kind "analytic"), writes it to path, and loads it back through the
// same decoder sushi-server -table uses — the full disk round trip a
// measured table would take, applied to an analytic table so identity
// can be pinned.
func AnalyticRoundTripForTest(t *LatencyTable, w Workload, path string) (*LatencyTable, error) {
	f, err := calib.FromTable(t, string(w))
	if err != nil {
		return nil, err
	}
	if err := calib.WriteFile(path, f); err != nil {
		return nil, err
	}
	rt, _, err := core.LoadTableFile(path)
	return rt, err
}
