package sushi

import (
	"context"
	"fmt"
	"time"

	"sushi/internal/core"
	"sushi/internal/latencytable"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// LatencyTable is the SushiAbs lookup table a deployment schedules
// from: rows are the serving SubNets, columns the candidate cached
// SubGraphs, cells predicted seconds. Tables are analytic by default
// (derived from the simulated accelerator); LoadMeasuredTable loads
// one calibrated on real executions instead.
type LatencyTable = latencytable.Table

// LoadMeasuredTable reads a calibration table file (written by
// sushi-bench -calibrate -table-out) and returns the latency table it
// embeds plus the workload it was measured for. Serve from it with
// WithMeasuredTable; the deployment's Options.Workload must name the
// same family.
func LoadMeasuredTable(path string) (*LatencyTable, Workload, error) {
	return core.LoadTableFile(path)
}

// RecachePolicy configures the replica cache-management layer enabled
// by WithRecache: window size, minimum predicted-latency gain and
// switch cooldown. Zero-valued fields select defaults.
type RecachePolicy = serving.RecachePolicy

// RouterKind names a cluster dispatch policy.
type RouterKind string

// Dispatch policies for WithRouter.
const (
	// RoundRobin cycles through replicas — the stateless baseline.
	RoundRobin = RouterKind(core.RouterRoundRobin)
	// LeastLoaded joins the shortest queue.
	LeastLoaded = RouterKind(core.RouterLeastLoaded)
	// Affinity steers each query to the replica whose cached SubGraph
	// best covers the SubNet it would serve, maximizing cross-query
	// SubGraph-Stationary reuse (the paper's core idea) at cluster scale.
	Affinity = RouterKind(core.RouterAffinity)
	// RandomRouter spreads load with a seeded uniform draw (see
	// WithRouterSeed); reproducible baseline for experiments.
	RandomRouter = RouterKind(core.RouterRandom)
	// Fastest is the hardware-aware policy for heterogeneous fleets: it
	// scores each replica by the service latency its OWN latency table
	// predicts for the query (scaled by queue depth) and picks the
	// minimum — compute-heavy SubNets flow to wide datacenter arrays,
	// small SubNets to embedded boards (§5.4.2 at cluster scale).
	Fastest = RouterKind(core.RouterFastest)
)

// ClusterOption customizes NewCluster beyond the per-replica Options.
type ClusterOption func(*core.ClusterOptions)

// WithReplicas sets the replica count R (default 1). Each replica is a
// full SUSHI deployment: its own simulated SushiAccel, Persistent Buffer
// and scheduler, over one shared SushiAbs latency table.
func WithReplicas(n int) ClusterOption {
	return func(o *core.ClusterOptions) { o.Replicas = n }
}

// WithRouter selects the dispatch policy (default RoundRobin).
func WithRouter(kind RouterKind) ClusterOption {
	return func(o *core.ClusterOptions) { o.Router = string(kind) }
}

// WithRouterSeed seeds the RandomRouter (default 1).
func WithRouterSeed(seed int64) ClusterOption {
	return func(o *core.ClusterOptions) { o.RouterSeed = seed }
}

// WithHardware assigns per-replica hardware: replica i runs on cfgs[i],
// with a latency table derived per distinct configuration — mixed
// ZCU104/AlveoU50 fleets are first-class:
//
//	c, err := sushi.NewCluster(opt,
//		sushi.WithHardware(sushi.ZCU104(), sushi.ZCU104(), sushi.AlveoU50()),
//		sushi.WithRouter(sushi.Fastest))
//
// The replica count follows len(cfgs) unless WithReplicas names the
// same number; a mismatch is rejected. Without WithHardware every
// replica runs Options.Accel (homogeneous, one shared table).
func WithHardware(cfgs ...AccelConfig) ClusterOption {
	return func(o *core.ClusterOptions) { o.Accels = cfgs }
}

// BatchPolicy configures SubGraph-stationary micro-batching (see
// WithBatching): up to MaxBatch same-SubNet queries share one
// accelerator pass, waiting at most Window for the batch to fill.
type BatchPolicy = serving.BatchPolicy

// Batching holds the virtual-time batch former's knobs for
// Cluster.Simulate: MaxBatch queries per flush, Window in VIRTUAL
// seconds (not wall clock). The zero value defers to the cluster's
// WithBatching policy; MaxBatch 1 forces batching off for the run.
type Batching = simq.Batching

// WithBatching enables SubGraph-stationary micro-batching on every
// replica: up to b queries that would be served the SAME SubNet are
// grouped into one accelerator pass — the shared weights are fetched
// (or read from the Persistent Buffer) once, and each member pays only
// its own compute and activation traffic — waiting at most window for
// the batch to fill. This is the throughput lever the paper's
// weight-traffic analysis implies: amortizing the dominant cost across
// queries. The policy applies to the live Serve path (window = wall
// clock) and is the default batch former for Cluster.Simulate (window
// reinterpreted as virtual seconds). b <= 1 or window <= 0 leaves
// serving unbatched and bit-identical to a plain deployment.
func WithBatching(b int, window time.Duration) ClusterOption {
	return func(o *core.ClusterOptions) {
		o.Batch = &serving.BatchPolicy{MaxBatch: b, Window: window}
	}
}

// PartitionPolicy configures how a multi-tenant fleet splits each
// replica's shared Persistent Buffer between co-hosted models (see
// WithPartition): Mode picks static vs traffic-weighted, Window the
// queries between traffic rebalances.
type PartitionPolicy = serving.PartitionPolicy

// PartitionMode names a shared-PB splitting policy.
type PartitionMode = serving.PartitionMode

// Partition modes for WithPartition.
const (
	// PartitionStatic fixes the equal boot-time split (PB/M per model).
	PartitionStatic = serving.PartitionStatic
	// PartitionTraffic re-apportions PB shares to observed per-model
	// traffic — a hot model steals cache from a cold one, enacted
	// through the same cache-switch machinery as WithRecache.
	PartitionTraffic = serving.PartitionTraffic
)

// WithModels makes the fleet multi-tenant: every replica co-hosts one
// full serving stack per model — its own scheduler and latency-table
// family per (model, hardware config) pair — behind a shared
// Persistent Buffer the tenants partition. The weight-shared SuperNet
// makes the PB a model-agnostic resource, so consolidating families
// onto one fleet beats static hardware partitioning whenever their
// load peaks are not simultaneous:
//
//	c, err := sushi.NewCluster(sushi.Options{},
//		sushi.WithModels(sushi.ResNet50, sushi.MobileNetV3),
//		sushi.WithReplicas(4),
//		sushi.WithPartition(sushi.PartitionPolicy{Mode: sushi.PartitionTraffic}))
//
// Queries pick their model via Query.Model ("resnet50", ...); an empty
// Model resolves to the first listed model. Without WithModels the
// deployment is single-model (Options.Workload) and bit-identical per
// seed to pre-multi-tenant behaviour.
func WithModels(models ...Workload) ClusterOption {
	return func(o *core.ClusterOptions) { o.Models = models }
}

// WithPartition selects the shared-PB cache-partitioning policy of a
// WithModels fleet (default: static equal split). Under
// PartitionTraffic the partitioner re-apportions PB half-slots to the
// observed per-model traffic every pol.Window served queries: shrunk
// models are forced onto smaller cached SubGraphs, grown models take
// bigger ones, with every switch's fill cost modeled exactly like a
// WithRecache switch (virtual busy time in Cluster.Simulate, next-query
// charge on the live path).
func WithPartition(pol PartitionPolicy) ClusterOption {
	return func(o *core.ClusterOptions) { o.Partition = &pol }
}

// AutoscaleOptions configures an elastic fleet for WithAutoscale: the
// admitting-replica bounds [Min, Max], the scaling policy by name
// ("utilization", "slo" or "saturation"), the evaluation cadence and
// the cooldown between enacted scale actions (both in virtual
// seconds).
type AutoscaleOptions = core.AutoscaleOptions

// WithAutoscale makes the fleet elastic: the deployment boots Max full
// replicas up front (cache columns, latency tables and Persistent
// Buffer partitions are assigned at build time for every replica that
// could ever serve), replicas Min..Max-1 start in Standby, and
// Cluster.Simulate lets the named policy move the admitting count
// between Min and Max on a fixed virtual-time cadence:
//
//	c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
//		sushi.WithAutoscale(sushi.AutoscaleOptions{
//			Min: 2, Max: 8, Policy: "utilization", Interval: 0.25}))
//
// Replica lifecycle is first-class in the simulated run: a scale-up
// boots a Standby (or re-boots a Retired) replica and charges its
// cold-Persistent-Buffer fill as virtual busy time — exactly a
// re-cache fill — before it serves; a scale-down stops admitting,
// drains the replica's queue and in-flight batch, then retires it from
// every router's view. Min == Max (or omitting WithAutoscale) keeps
// the fleet fixed and runs bit-identical per seed. WithReplicas may be
// omitted (it defaults to Max) but must equal Max when set.
func WithAutoscale(a AutoscaleOptions) ClusterOption {
	return func(o *core.ClusterOptions) { o.Autoscale = &a }
}

// WithCohorts attaches a client-cohort population to the deployment:
// the heterogeneous-traffic counterpart of a single arrival process.
// Each Cohort is one homogeneous client group — a mean rate, an
// inter-arrival law (Poisson/Gamma/Weibull burstiness), empirical
// budget/accuracy marks, and the SLO class + model its queries carry —
// and the population superposes them under SplitMix-derived per-cohort
// seeds:
//
//	c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
//		sushi.WithReplicas(4),
//		sushi.WithCohorts(
//			sushi.Cohort{SLOClass: "gold", Rate: 40, Budget: sushi.Empirical{Values: []float64{2e-3}}},
//			sushi.Cohort{SLOClass: "batch", Rate: 10, InterArrival: sushi.IAGamma, Shape: 0.4},
//		))
//
// The population becomes the default workload of
// Cluster.SimulateCohorts and POST /v1/simulate's "cohorts" process;
// per-SLO-class breakdowns and the Jain fairness index appear in every
// Summary the run produces. Cohorts targeting models the fleet does
// not host are rejected at deploy time with a typed error.
func WithCohorts(cohorts ...Cohort) ClusterOption {
	return func(o *core.ClusterOptions) { o.Cohorts = &workload.Population{Cohorts: cohorts} }
}

// WithMeasuredTable serves the whole fleet from the given prebuilt
// latency table instead of deriving an analytic one — the runtime end
// of the offline-calibration loop:
//
//	table, w, err := sushi.LoadMeasuredTable("zcu104.sushical")
//	c, err := sushi.NewCluster(sushi.Options{Workload: w},
//		sushi.WithReplicas(2), sushi.WithMeasuredTable(table))
//
// The table's rows must cover the deployment's frontier in order (a
// full-frontier calibration sweep; partial tables are rejected with a
// typed error). Because one table describes one (model, hardware)
// pair, WithMeasuredTable cannot combine with WithHardware or
// WithModels. Analytic tables round-tripped through the measured file
// format serve bit-identically to never-exported ones.
func WithMeasuredTable(t *LatencyTable) ClusterOption {
	return func(o *core.ClusterOptions) { o.Table = t }
}

// WithRecache enables the window-driven cache-management layer on every
// replica: caches become mutable at runtime, switching to the latency
// table column that would have served the replica's recent query mix
// with fewer infeasible queries or at least pol.MinGain lower total
// predicted latency. The switch is a modeled, non-free action — the
// simq engine (Cluster.Simulate) charges each switch's Persistent
// Buffer fill time as replica busy time in virtual seconds. Zero-valued
// policy fields select defaults (window 16, gain 5%, cooldown = window).
func WithRecache(pol RecachePolicy) ClusterOption {
	return func(o *core.ClusterOptions) { o.Recache = &pol }
}

// Result is one open-loop outcome from ServeStream: the served record,
// the replica that produced it and any per-query error.
type Result = serving.Result

// ReplicaInfo describes one replica's identity, load, served aggregates
// and Persistent Buffer state.
type ReplicaInfo = core.ReplicaView

// Cluster is a multi-replica SUSHI deployment: R systems behind a
// dispatcher. All methods are safe for concurrent use; queries on one
// replica serialize (a stream on one accelerator) while replicas serve
// in parallel.
type Cluster struct {
	d *core.ClusterDeployment
}

// NewCluster builds a concurrent serving deployment. Options configures
// each replica exactly as New configures a System; ClusterOptions add
// the replica count and router:
//
//	c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
//		sushi.WithReplicas(4), sushi.WithRouter(sushi.Affinity))
//
// The i-th replica of each hardware group boots with cache candidate
// column i, so deployments start with distinct cached SubGraphs and
// affinity routing has signal from the first query; asking for more
// replicas than the latency table has columns is rejected with a typed
// error instead of silently reusing columns.
func NewCluster(opt Options, opts ...ClusterOption) (*Cluster, error) {
	var copt core.ClusterOptions
	for _, o := range opts {
		o(&copt)
	}
	d, err := core.DeployCluster(opt, copt)
	if err != nil {
		return nil, err
	}
	return &Cluster{d: d}, nil
}

// Serve routes one query to a replica and serves it there. A context
// deadline tightens the query's MaxLatency to the remaining wall-clock
// budget; cancellation fails fast.
func (c *Cluster) Serve(ctx context.Context, q Query) (Served, error) {
	return c.d.Cluster.Serve(ctx, q)
}

// ServeAll serves a closed-loop stream across the cluster: routing
// happens in stream order (deterministic for deterministic routers),
// replicas serve their shares in parallel, and results align with qs by
// index.
func (c *Cluster) ServeAll(ctx context.Context, qs []Query) ([]Served, error) {
	return c.d.Cluster.ServeAll(ctx, qs)
}

// ServeStream serves an open-loop stream: queries arriving on in are
// dispatched as they arrive and served concurrently. The result channel
// closes once in closes (or ctx is cancelled) and every in-flight query
// has drained. Consumers must drain the returned channel.
func (c *Cluster) ServeStream(ctx context.Context, in <-chan Query) <-chan Result {
	return c.d.Cluster.ServeStream(ctx, in)
}

// Size returns the replica count.
func (c *Cluster) Size() int { return c.d.Cluster.Size() }

// Router names the dispatch policy.
func (c *Cluster) Router() string { return c.d.Cluster.RouterName() }

// Models lists the co-hosted model ids in tenant order. Single-model
// deployments report one empty id.
func (c *Cluster) Models() []string { return c.d.Cluster.Models() }

// FrontierOf lists the servable SubNets of one co-hosted model ("" =
// the default model); ok is false for models the fleet does not host.
func (c *Cluster) FrontierOf(model string) (frontier []SubNetInfo, ok bool) {
	for i, md := range c.d.Models {
		if md.Model == model || (model == "" && i == 0) {
			return core.FrontierView(md.Frontier), true
		}
	}
	return nil, false
}

// Frontier lists the servable SubNets (shared by every replica).
func (c *Cluster) Frontier() []SubNetInfo {
	return core.FrontierView(c.d.Frontier)
}

// Replicas snapshots per-replica state: queue depth, served aggregates
// and Persistent Buffer contents.
func (c *Cluster) Replicas() []ReplicaInfo {
	return core.ReplicaViews(c.d.Cluster)
}

// Stats folds every replica's accumulator into one cluster summary.
// Each replica aggregates under its own lock; the fold happens on the
// reader, so serving never contends on a global stats mutex.
func (c *Cluster) Stats() Summary {
	return c.d.Cluster.Stats()
}

// SimOptions configures Cluster.Simulate.
type SimOptions struct {
	// QueueCap bounds each replica's wait queue (0 = unbounded);
	// Admission picks the overflow policy (default AdmitReject).
	QueueCap  int
	Admission AdmissionPolicy
	// LoadAware debits each query's latency budget by its queueing
	// delay before scheduling; Drop abandons queries whose budget is
	// exhausted before service starts.
	LoadAware, Drop bool
	// Router is the dispatch policy for the simulated run; empty
	// defaults to the cluster's own configured policy. A fresh router
	// instance is built per call, so repeated simulations over fresh
	// deployments reproduce exactly.
	Router RouterKind
	// RouterSeed seeds the RandomRouter.
	RouterSeed int64
	// Batching is the virtual-time batch former (B queries per flush,
	// window in virtual seconds). The zero value inherits the cluster's
	// WithBatching policy (wall-clock window carried over numerically);
	// set MaxBatch to 1 to force an unbatched run on a batched cluster.
	Batching Batching
	// Autoscale overrides the deployment's elastic-fleet configuration
	// for this run (nil inherits WithAutoscale; set Min == Max to pin
	// the fleet for a control run). Max must not exceed the deployed
	// replica count — Simulate cannot boot replicas the deployment
	// never built.
	Autoscale *AutoscaleOptions
	// Shards opts into the engine's parallel mode: replicas are
	// partitioned across up to Shards goroutines advancing in
	// conservative virtual-time windows, with results bit-identical to
	// the sequential engine at any shard count. Requires a shard-safe
	// router (RoundRobin or RandomRouter) and a fixed (non-autoscaled)
	// fleet; 0 or 1 is the sequential engine.
	Shards int
}

// Simulate plays a timed query stream through the cluster in virtual
// time: the simq discrete-event engine routes each query at its arrival
// instant against virtual queue depth, applies bounded queues with
// admission control, and folds p50/p95/p99 E2E latency, SLO attainment,
// goodput and drop counts. Virtual time means a day of diurnal traffic
// evaluates in milliseconds, deterministically per seed.
//
// The run shares the cluster's replicas with the live serve paths: each
// simulated query serializes on its replica's lock, and replica cache
// state adapts to the simulated traffic (that is the point — SubGraph
// Stationary behaviour under load). Run it against an otherwise idle
// cluster for reproducible results.
func (c *Cluster) Simulate(qs []TimedQuery, opt SimOptions) (*SimResult, error) {
	eng, err := c.engine(opt)
	if err != nil {
		return nil, err
	}
	return eng.Run(qs)
}

// SimulateProcess is Simulate with arrivals drawn LAZILY from an
// arrival process instead of a materialized []TimedQuery: the engine
// pulls the process's stream one instant at a time and mints the i-th
// query with mk at its arrival instant, so a billion-query run needs no
// billion-element arrival slice. proc must implement the workload
// Streamer face (every built-in process — Poisson, OnOff, Diurnal,
// TraceArrivals, Mix — does); results are bit-identical to generating
// proc.Times(n, seed) and calling Simulate. Sharded mode needs the
// whole stream up front, so SimOptions.Shards is rejected here.
func (c *Cluster) SimulateProcess(n int, proc ArrivalProcess, seed int64, mk func(i int, t float64) Query, opt SimOptions) (*SimResult, error) {
	if opt.Shards > 1 {
		return nil, fmt.Errorf("sushi: SimulateProcess streams arrivals lazily and cannot shard (Shards %d); materialize with Simulate instead", opt.Shards)
	}
	streamer, ok := proc.(workload.Streamer)
	if !ok {
		return nil, fmt.Errorf("sushi: arrival process %q cannot stream lazily; materialize with Simulate instead", proc.Name())
	}
	stream, err := streamer.Stream(seed)
	if err != nil {
		return nil, err
	}
	eng, err := c.engine(opt)
	if err != nil {
		return nil, err
	}
	return eng.RunProcess(n, stream, mk)
}

// SimulateCohorts streams n arrivals from the deployment's WithCohorts
// population through the virtual-time engine: arrivals and their
// minted queries (model, SLO class, budget/accuracy draws) are
// generated lazily in lockstep, so cohort runs ride the same
// allocation-free SimulateProcess machinery as plain processes. The
// result's Summary carries per-SLO-class breakdowns and the Jain
// fairness index. Deployments without WithCohorts are rejected.
func (c *Cluster) SimulateCohorts(n int, seed int64, opt SimOptions) (*SimResult, error) {
	if c.d.Cohorts == nil {
		return nil, fmt.Errorf("sushi: SimulateCohorts needs a WithCohorts population on the deployment")
	}
	return c.SimulatePopulation(n, *c.d.Cohorts, seed, opt)
}

// SimulatePopulation is SimulateCohorts over an explicit Population —
// sweep harnesses build populations per run instead of per deployment.
// Like SimulateProcess it streams lazily and cannot shard.
func (c *Cluster) SimulatePopulation(n int, pop Population, seed int64, opt SimOptions) (*SimResult, error) {
	if opt.Shards > 1 {
		return nil, fmt.Errorf("sushi: SimulatePopulation streams arrivals lazily and cannot shard (Shards %d); materialize with Population.Queries and Simulate instead", opt.Shards)
	}
	ls, err := pop.Labeled(seed)
	if err != nil {
		return nil, err
	}
	eng, err := c.engine(opt)
	if err != nil {
		return nil, err
	}
	// The engine calls mk immediately after each stream draw, so one
	// buffered arrival is always the one being minted.
	var cur workload.CohortArrival
	stream := func() (float64, bool) {
		a, ok := ls()
		if !ok {
			return 0, false
		}
		cur = a
		return a.T, true
	}
	mk := func(i int, t float64) Query {
		q := cur.Query
		q.ID = i
		return q
	}
	return eng.RunProcess(n, stream, mk)
}

// engine builds the simq engine for one simulated run.
func (c *Cluster) engine(opt SimOptions) (*simq.Engine, error) {
	kind := string(opt.Router)
	if kind == "" {
		kind = c.d.Cluster.RouterName()
	}
	router, err := core.NewRouter(kind, opt.RouterSeed)
	if err != nil {
		return nil, err
	}
	asc := c.d.Autoscale
	if opt.Autoscale != nil {
		if asc, err = core.ResolveAutoscale(opt.Autoscale); err != nil {
			return nil, err
		}
	}
	return simq.FromCluster(c.d.Cluster, simq.Options{
		QueueCap:  opt.QueueCap,
		Admission: opt.Admission,
		LoadAware: opt.LoadAware,
		Drop:      opt.Drop,
		Router:    router,
		Batching:  simq.ResolveBatching(opt.Batching, c.d.Cluster.BatchPolicy()),
		Autoscale: asc,
		Shards:    opt.Shards,
	})
}
