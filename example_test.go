package sushi_test

import (
	"context"
	"fmt"
	"log"

	"sushi"
)

// Example demonstrates the minimal serving loop: build a system, submit a
// constrained query, read the outcome.
func Example() {
	sys, err := sushi.New(sushi.Options{
		Workload: sushi.MobileNetV3,
		Policy:   sushi.StrictAccuracy,
	})
	if err != nil {
		log.Fatal(err)
	}
	r, err := sys.Serve(sushi.Query{ID: 0, MinAccuracy: 78, MaxLatency: 10e-3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("served SubNet %s at %.2f%% top-1\n", r.SubNet, r.Accuracy)
	// Output:
	// served SubNet C at 78.59% top-1
}

// ExampleSystem_Frontier lists the servable SubNets of a deployment.
func ExampleSystem_Frontier() {
	sys, err := sushi.New(sushi.Options{Workload: sushi.MobileNetV3})
	if err != nil {
		log.Fatal(err)
	}
	fr := sys.Frontier()
	fmt.Printf("%d SubNets from %s (%.2f%%) to %s (%.2f%%)\n",
		len(fr), fr[0].Name, fr[0].Accuracy, fr[len(fr)-1].Name, fr[len(fr)-1].Accuracy)
	// Output:
	// 7 SubNets from A (75.90%) to G (80.10%)
}

// ExampleSystem_ServeAll serves a generated workload and summarizes it.
func ExampleSystem_ServeAll() {
	sys, err := sushi.New(sushi.Options{
		Workload: sushi.MobileNetV3,
		Policy:   sushi.StrictLatency,
	})
	if err != nil {
		log.Fatal(err)
	}
	qs, err := sushi.UniformWorkload(20,
		sushi.Range{Lo: 76, Hi: 80},     // accuracy floors
		sushi.Range{Lo: 2e-3, Hi: 8e-3}, // latency budgets
		42)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		log.Fatal(err)
	}
	sum := sushi.Summarize(rs)
	fmt.Printf("served %d queries, latency SLO attainment %.0f%%\n",
		sum.Queries, sum.LatencySLO*100)
	// Output:
	// served 20 queries, latency SLO attainment 100%
}

// ExampleNewCluster serves a workload concurrently across four replica
// accelerators with SubGraph-affinity routing.
func ExampleNewCluster() {
	c, err := sushi.NewCluster(sushi.Options{
		Workload: sushi.MobileNetV3,
		Policy:   sushi.StrictLatency,
	}, sushi.WithReplicas(4), sushi.WithRouter(sushi.Affinity))
	if err != nil {
		log.Fatal(err)
	}
	qs, err := sushi.UniformWorkload(40,
		sushi.Range{Lo: 76, Hi: 80},
		sushi.Range{Lo: 2e-3, Hi: 8e-3},
		42)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := c.ServeAll(context.Background(), qs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d replicas served %d queries via %s routing\n",
		c.Size(), len(rs), c.Router())
	// Output:
	// 4 replicas served 40 queries via affinity routing
}
