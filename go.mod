module sushi

go 1.24.0
