// Package sushi is the public API of the SUSHI reproduction: a vertically
// integrated inference-serving stack for weight-shared DNNs (MLSys 2023,
// "Subgraph Stationary Hardware-Software Inference Co-Design").
//
// SUSHI serves a stream of queries, each annotated with an (accuracy,
// latency) constraint pair, on an accelerator with a Persistent Buffer
// that keeps a SubGraph of SuperNet weights stationary across queries
// (SubGraph Stationary, SGS). A state-aware scheduler decides per query
// which SubNet to activate and, every Q queries, which SubGraph to cache.
//
// Quickstart (single accelerator):
//
//	sys, err := sushi.New(sushi.Options{Workload: sushi.MobileNetV3})
//	if err != nil { ... }
//	res, err := sys.Serve(sushi.Query{MinAccuracy: 78, MaxLatency: 5e-3})
//	fmt.Printf("served %s at %.2f ms\n", res.SubNet, res.Latency*1e3)
//
// Concurrent serving scales the same stack to N replica accelerators —
// each with its own Persistent Buffer — behind a pluggable router. The
// Affinity router steers each query to the replica whose cached SubGraph
// already covers the SubNet it would serve, maximizing cross-query SGS
// reuse at cluster scale:
//
//	c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
//		sushi.WithReplicas(4), sushi.WithRouter(sushi.Affinity))
//	if err != nil { ... }
//	rs, err := c.ServeAll(ctx, queries) // or c.ServeStream(ctx, ch)
//
// Every cluster serve path is context-aware: a context deadline tightens
// the query's latency budget and cancellation drains cleanly.
//
// Fleets may be heterogeneous: WithHardware assigns per-replica
// accelerator configurations (mixed ZCU104/AlveoU50 deployments get one
// latency table per distinct configuration), the Fastest router
// dispatches against per-replica predicted latencies, and WithRecache
// makes each replica's Persistent-Buffer cache mutable at runtime —
// switching to the SubGraph that would have served the replica's recent
// query mix best, with the switch cost modeled in virtual time by
// Cluster.Simulate.
//
// WithBatching turns on SubGraph-stationary micro-batching, the
// throughput lever the paper's weight-traffic analysis implies: up to B
// queries that resolve to the same scheduled SubNet share one
// accelerator pass — the dominant weight fetch is paid once, each
// member only its own compute and activation traffic — waiting at most
// W for the batch to fill. The same B/W pair drives the live Serve path
// (wall clock) and Cluster.Simulate's virtual batch former.
//
// WithModels makes the fleet multi-tenant: every replica co-hosts one
// scheduler and latency-table family per model family behind a shared
// Persistent Buffer, partitioned statically or by observed traffic
// (WithPartition) — a hot model steals cache from a cold one. Queries
// pick their model via Query.Model, routers and the batch formers are
// model-aware, workload.Mix interleaves per-model arrival streams, and
// Summary.PerModel / GET /v1/replicas report per-model tails and SLO.
//
// The deeper layers are available for direct use in advanced scenarios:
// the experiment harness regenerating every figure and table of the paper
// lives behind Experiment; the cmd/sushi-bench tool wraps it.
package sushi

import (
	"context"
	"fmt"
	"strings"

	"sushi/internal/accel"
	"sushi/internal/calib"
	"sushi/internal/core"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/simq"
	"sushi/internal/workload"
)

// Re-exported core types. Aliases keep the public surface small while the
// implementation stays in internal packages.
type (
	// Query is one inference request with its (A_t, L_t) constraints.
	Query = sched.Query
	// Served is the outcome of one query.
	Served = serving.Served
	// Summary aggregates a served stream.
	Summary = serving.Summary
	// Policy selects the hard constraint (StrictAccuracy/StrictLatency).
	Policy = sched.Policy
	// Mode selects the system variant (Full/StateUnaware/NoPB).
	Mode = serving.Mode
	// AccelConfig parameterizes the simulated accelerator.
	AccelConfig = accel.Config
	// Workload names a SuperNet family.
	Workload = core.Workload
	// Options configures New.
	Options = core.DeployOptions
	// Range is a constraint-sampling interval for workload generators.
	Range = workload.Range
	// Phase is one segment of a phased workload.
	Phase = workload.Phase
)

// Policies.
const (
	// StrictAccuracy serves the fastest SubNet meeting the accuracy bound.
	StrictAccuracy = sched.StrictAccuracy
	// StrictLatency serves the most accurate SubNet meeting the latency bound.
	StrictLatency = sched.StrictLatency
	// MinEnergy serves the lowest-energy SubNet meeting both bounds
	// (extension beyond the paper's Algorithm 1; see §7's energy remark).
	MinEnergy = sched.MinEnergy
)

// System variants (Fig. 16's comparison).
const (
	// Full is the complete SUSHI stack.
	Full = serving.Full
	// StateUnaware caches one static SubGraph ("Sushi w/o Sched").
	StateUnaware = serving.StateUnaware
	// NoPB disables the Persistent Buffer ("No-Sushi").
	NoPB = serving.NoPB
)

// Workloads.
const (
	// ResNet50 is the weight-shared OFA-ResNet50 family.
	ResNet50 = core.ResNet50
	// MobileNetV3 is the weight-shared OFA-MobileNetV3 family.
	MobileNetV3 = core.MobileNetV3
)

// Accelerator presets.
var (
	// ZCU104 is the embedded-board configuration (Tables 2-3).
	ZCU104 = accel.ZCU104
	// AlveoU50 is the datacenter-card configuration (§5.4).
	AlveoU50 = accel.AlveoU50
	// RooflineStudy is the analytic-model configuration (§5.2).
	RooflineStudy = accel.RooflineStudy
)

// Workload generators (seeded, deterministic).
var (
	// UniformWorkload draws n queries with uniform constraints.
	UniformWorkload = workload.Uniform
	// PhasedWorkload cycles through constraint phases.
	PhasedWorkload = workload.Phased
	// BurstyWorkload injects transient latency-budget crunches.
	BurstyWorkload = workload.Bursty
	// DriftingWorkload linearly interpolates constraints over the stream.
	DriftingWorkload = workload.Drifting
)

// Summarize folds a served stream into aggregate statistics.
var Summarize = serving.Summarize

// Timed serving (open-loop arrivals with queueing, §1's transient
// overload regime).
type (
	// TimedQuery is a query plus its arrival time.
	TimedQuery = serving.TimedQuery
	// TimedServed is a timed query's outcome (service + queueing).
	TimedServed = serving.TimedServed
	// TimedOptions controls the queueing discipline.
	TimedOptions = serving.TimedOptions
	// TimedSummary aggregates a timed session.
	TimedSummary = serving.TimedSummary
)

// SummarizeTimed folds a timed session.
var SummarizeTimed = serving.SummarizeTimed

// PoissonArrivals draws open-loop arrival times at the given rate.
var PoissonArrivals = workload.PoissonArrivals

// Open-loop simulation. Arrival processes generate deterministic
// seeded arrival streams; Cluster.Simulate plays them through the
// virtual-time discrete-event engine (internal/simq) with bounded
// queues and admission control.
type (
	// ArrivalProcess generates open-loop arrival instants.
	ArrivalProcess = workload.ArrivalProcess
	// Poisson is the constant-rate memoryless process.
	Poisson = workload.Poisson
	// OnOff is the two-state bursty (MMPP) process.
	OnOff = workload.OnOff
	// Diurnal is the sinusoidal-rate day/night process.
	Diurnal = workload.Diurnal
	// TraceArrivals replays recorded (arrival, A_t, L_t) tuples.
	TraceArrivals = workload.Trace
	// TraceEntry is one recorded tuple of a TraceArrivals.
	TraceEntry = workload.TraceEntry
	// Mix superposes per-model arrival processes into one merged,
	// labelled stream — the multi-tenant workload combinator (e.g. a
	// diurnal MobileNetV3 stream interleaved with bursty ResNet50).
	Mix = workload.Mix
	// MixComponent is one model's arrival stream inside a Mix.
	MixComponent = workload.MixComponent
	// Gamma is the Gamma-renewal arrival process (shape < 1 bursty,
	// shape > 1 regular, mean rate pinned).
	Gamma = workload.Gamma
	// Weibull is the Weibull-renewal arrival process (shape 1 is
	// bit-identical to Poisson per seed).
	Weibull = workload.Weibull
	// Empirical is a weighted discrete distribution over observed
	// budget/accuracy marks (the zero value means "no constraint").
	Empirical = workload.Empirical
	// Cohort is one homogeneous client group: rate, inter-arrival law,
	// empirical marks, SLO class and target model.
	Cohort = workload.Cohort
	// Population superposes N seeded cohorts into one arrival stream —
	// the heterogeneous-client workload combinator (see WithCohorts).
	Population = workload.Population
	// InterArrival names a Cohort's inter-arrival law.
	InterArrival = workload.InterArrival
	// TraceV2 is the versioned replay trace: header (version, seed,
	// cohort table) plus records carrying arrival, model, cohort id,
	// SLO class and the constraint pair — recorded simulations replay
	// bit-exactly through it.
	TraceV2 = workload.TraceV2
	// TraceV2Record is one recorded arrival of a TraceV2.
	TraceV2Record = workload.TraceV2Record
	// CohortLabel is one row of a TraceV2's cohort table.
	CohortLabel = workload.CohortLabel
	// TraceVersionError reports a trace whose version the decoder does
	// not speak.
	TraceVersionError = workload.TraceVersionError
	// TraceDecodeError reports malformed or truncated trace input.
	TraceDecodeError = workload.TraceDecodeError
	// ModelSummary is one model's slice of a multi-tenant Summary.
	ModelSummary = serving.ModelSummary
	// ClassSummary is one SLO class's slice of a cohort Summary.
	ClassSummary = serving.ClassSummary
	// SimResult aggregates one open-loop run.
	SimResult = simq.Result
	// SimOutcome is one query's fate in an open-loop run.
	SimOutcome = simq.Outcome
	// AdmissionPolicy selects the bounded-queue overflow behaviour.
	AdmissionPolicy = simq.Admission
)

// Admission policies for SimOptions.
const (
	// AdmitReject refuses arrivals when the replica queue is full.
	AdmitReject = simq.Reject
	// AdmitShedOldest evicts the stalest queued query instead.
	AdmitShedOldest = simq.ShedOldest
	// AdmitDegrade admits past the cap but serves with the fastest
	// SubNet under the replica's current cache state.
	AdmitDegrade = simq.Degrade
)

// Inter-arrival laws for Cohort.InterArrival.
const (
	// IAExp is memoryless exponential spacing (the zero value: a lone
	// cohort is a Poisson stream).
	IAExp = workload.IAExp
	// IAGamma is Gamma-distributed spacing with Cohort.Shape.
	IAGamma = workload.IAGamma
	// IAWeibull is Weibull-distributed spacing with Cohort.Shape.
	IAWeibull = workload.IAWeibull
)

// Cohort-workload and trace v2 helpers.
var (
	// ParsePopulation builds a Population from the compact k=v spec
	// behind sushi-server -cohorts (see workload.ParsePopulation).
	ParsePopulation = workload.ParsePopulation
	// ZipfRates apportions a total rate across n cohorts by a Zipf law
	// — the canonical skewed-client decomposition.
	ZipfRates = workload.ZipfRates
	// DecodeTraceV2 reads one trace v2 stream (typed errors, never
	// panics).
	DecodeTraceV2 = workload.DecodeTraceV2
	// RecordTraceQueries captures an already-timed query stream as a
	// trace v2 for bit-exact replay.
	RecordTraceQueries = workload.RecordQueries
)

// RecordCohortTrace records the cohortsweep experiment's skewed
// 100-cohort population (the canonical heterogeneous workload) as a
// replayable trace v2 — the sushi-bench -record-trace path. queries <= 0
// records the experiment's default stream length.
func RecordCohortTrace(queries int) (*TraceV2, error) {
	return core.CohortSweepTrace(queries)
}

// ReplayTrace plays a recorded trace v2 through a fresh cohortsweep
// fleet and reports the run (rendered table + headline metrics) — the
// sushi-bench -replay-trace path. Replaying a RecordCohortTrace capture
// reproduces the cohortsweep skewed arm bit for bit.
func ReplayTrace(tr *TraceV2) (string, map[string]float64, error) {
	res, err := core.ReplayTraceV2(tr)
	if err != nil {
		return "", nil, err
	}
	return res.String(), res.Metrics, nil
}

// TimedStream pairs a query stream with arrival times, element-wise.
var TimedStream = simq.Stream

// ServeTimed runs a timed stream through the system's single accelerator
// in arrival order (FIFO, non-preemptive). It is a thin wrapper over the
// simq discrete-event engine — the same queueing semantics that drive
// Cluster.Simulate. The whole stream is validated before any query is
// served, so invalid input has no side effects on accelerator state.
func (s *System) ServeTimed(qs []TimedQuery, opt TimedOptions) ([]TimedServed, error) {
	return simq.ServeTimed(s.d.System, qs, opt)
}

// System is a ready-to-serve SUSHI deployment.
type System struct {
	d *core.Deployment
}

// New builds a SUSHI system. Zero-valued options select ResNet50 on a
// ZCU104 with the full stack, STRICT_ACCURACY... see Options for fields.
func New(opt Options) (*System, error) {
	d, err := core.Deploy(opt)
	if err != nil {
		return nil, err
	}
	return &System{d: d}, nil
}

// Serve runs one query through the stack. It is the back-compat wrapper
// over ServeContext with a background context.
func (s *System) Serve(q Query) (Served, error) { return s.d.Serve(q) }

// ServeAll runs a query stream in order (back-compat wrapper over
// ServeAllContext with a background context).
func (s *System) ServeAll(qs []Query) ([]Served, error) { return s.d.ServeAll(qs) }

// ServeContext runs one query with deadline and cancellation awareness:
// a context deadline tightens the query's MaxLatency to the remaining
// wall-clock budget, and an expired or cancelled context fails fast
// without touching accelerator state.
func (s *System) ServeContext(ctx context.Context, q Query) (Served, error) {
	return s.d.System.ServeContext(ctx, q)
}

// ServeAllContext runs a stream in order, checking for cancellation
// between queries.
func (s *System) ServeAllContext(ctx context.Context, qs []Query) ([]Served, error) {
	return s.d.System.ServeAllContext(ctx, qs)
}

// SubNetInfo describes one servable SubNet of the deployment.
type SubNetInfo = core.SubNetView

// Frontier lists the deployment's servable SubNets, smallest first.
func (s *System) Frontier() []SubNetInfo {
	return core.FrontierView(s.d.Frontier)
}

// CacheState describes a Persistent Buffer's contents.
type CacheState = core.CacheView

// Cache reports the current Persistent Buffer state.
func (s *System) Cache() CacheState {
	return core.NewCacheView(s.d.System)
}

// Experiment regenerates one of the paper's tables or figures by id
// (fig2, fig3, fig9..fig18, table1..table6, hitratio, ...; see
// Experiments for the full list) and returns its rendered text.
// Workload-parameterized experiments accept "fig10:mobilenetv3" style
// suffixes; the default is resnet50 unless the entry says otherwise.
func Experiment(id string) (string, error) {
	res, err := runExperiment(id)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// ExperimentCSV regenerates an experiment and renders it as CSV (with
// notes as trailing '#' comment lines).
func ExperimentCSV(id string) (string, error) {
	res, err := runExperiment(id)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// ExperimentWithMetrics regenerates an experiment and returns its
// rendered text together with its headline metrics in machine-readable
// form (canonical keys like "goodput_qps" and "p99_e2e_ms"; nil for
// experiments without a scalar headline) — the hook behind sushi-bench
// -json, which records the bench trajectory as JSON instead of prose.
func ExperimentWithMetrics(id string) (string, map[string]float64, error) {
	res, err := runExperiment(id)
	if err != nil {
		return "", nil, err
	}
	return res.String(), res.Metrics, nil
}

// experimentEntry couples an experiment id with its runner and default
// workload. Experiments and runExperiment both read experimentRegistry,
// so the advertised list and the dispatch can never diverge (the old
// hand-written switch once dispatched "fig18" without listing it).
type experimentEntry struct {
	id string
	// workload is the default when the id carries no ":workload" suffix
	// ("" means ResNet50). Workload-insensitive runners ignore it.
	workload core.Workload
	run      func(core.Workload) (*core.Result, error)
}

// fixed adapts a workload-insensitive experiment to the registry shape.
func fixed(run func() (*core.Result, error)) func(core.Workload) (*core.Result, error) {
	return func(core.Workload) (*core.Result, error) { return run() }
}

var experimentRegistry = []experimentEntry{
	{id: "fig2", run: core.Fig2},
	{id: "fig3", run: fixed(core.Fig3)},
	{id: "fig9", run: core.Fig9},
	{id: "fig10", run: core.Fig10},
	{id: "fig11", run: core.Fig11},
	{id: "fig12", run: core.Fig12},
	{id: "fig13a", run: fixed(core.Fig13a)},
	{id: "fig13b", run: core.Fig13b},
	{id: "fig14", run: fixed(core.Fig14)},
	{id: "fig15", run: func(w core.Workload) (*core.Result, error) {
		return core.Fig15(w, sched.StrictLatency, 0)
	}},
	{id: "fig15acc", run: func(w core.Workload) (*core.Result, error) {
		return core.Fig15(w, sched.StrictAccuracy, 0)
	}},
	{id: "fig16", run: func(w core.Workload) (*core.Result, error) { return core.Fig16(w, 0) }},
	{id: "fig17", run: func(w core.Workload) (*core.Result, error) { return core.Fig17(w, 0) }},
	// fig18 is fig17's companion Q-sweep on the MobileNetV3 family.
	{id: "fig18", workload: core.MobileNetV3,
		run: func(w core.Workload) (*core.Result, error) { return core.Fig17(w, 0) }},
	{id: "table1", run: fixed(core.Table1)},
	{id: "table2", run: fixed(core.Table2)},
	{id: "table3", run: fixed(core.Table3)},
	{id: "table4", run: fixed(core.Table4)},
	{id: "table5", run: func(w core.Workload) (*core.Result, error) { return core.Table5(w, 0) }},
	{id: "table6", run: core.Table6},
	{id: "hitratio", run: fixed(func() (*core.Result, error) { return core.HitRatioA4(0) })},
	{id: "ablation-avg", run: func(w core.Workload) (*core.Result, error) {
		return core.AblationAvg(w, 0)
	}},
	{id: "overload", run: func(w core.Workload) (*core.Result, error) { return core.Overload(w, 0) }},
	// loadsweep is the open-loop analogue of fig16: offered load vs tail
	// latency/SLO/goodput per system variant, through the simq engine.
	{id: "loadsweep", run: func(w core.Workload) (*core.Result, error) { return core.LoadSweep(w, 0) }},
	// hetero compares homogeneous vs mixed ZCU104+AlveoU50 fleets with
	// per-replica latency tables, hardware-aware routing and dynamic
	// re-caching under identical seeded arrivals (Table 2 / §5.4.2 at
	// cluster scale).
	{id: "hetero", run: func(w core.Workload) (*core.Result, error) { return core.Hetero(w, 0) }},
	// batchsweep is the micro-batching payoff curve: goodput/p99 vs the
	// batch former's B x W grid at fixed Poisson offered load beyond
	// unbatched capacity (weights fetched once per batch).
	{id: "batchsweep", workload: core.MobileNetV3,
		run: func(w core.Workload) (*core.Result, error) { return core.BatchSweep(w, 0) }},
	// multitenant is the consolidation-vs-isolation experiment: one
	// shared multi-model fleet vs a static per-model hardware split at
	// identical hardware and seeds, under anti-correlated per-model
	// bursts (workload-insensitive: it always runs both families).
	{id: "multitenant", run: fixed(func() (*core.Result, error) { return core.MultiTenant(0) })},
	// elastic is the autoscaling experiment: one diurnal stream served
	// by a fixed 6-replica fleet vs an elastic 2..8 fleet whose
	// scale-ups pay the cold Persistent Buffer fill in virtual time —
	// the elastic fleet wins on both replica-seconds and SLO
	// (workload-insensitive: calibrated on the MobileNetV3 family).
	{id: "elastic", run: fixed(func() (*core.Result, error) { return core.Elastic(0) })},
	// cohortsweep is the heterogeneous-clients experiment: identical
	// mean load arriving as one smooth Poisson stream vs a Zipf-skewed
	// population of 100 bursty cohorts (p99/SLO gap at unchanged mean
	// load), plus a degrade+batching arm recovering part of the gap
	// (workload-insensitive: calibrated on the MobileNetV3 family).
	{id: "cohortsweep", run: fixed(func() (*core.Result, error) { return core.CohortSweep(0) })},
	// calibsweep is the calibration-noise experiment: multiplicative
	// seeded per-cell noise on the latency table (a simulated
	// miscalibrated sweep) vs decision-level SLO attainment — the
	// scheduler decides from its noisy belief, violations are judged
	// against the true table. Sigma 0 is pinned at exactly 100%
	// (workload-insensitive: calibrated on the MobileNetV3 family).
	{id: "calibsweep", run: fixed(func() (*core.Result, error) { return core.CalibSweep(0) })},
	// fwdbench is the real-execution data-plane microbenchmark: the
	// blocked/arena Forward and the blocked convolution kernel timed
	// against the reference scans single-threaded — its speedup metrics
	// pin the fast-inference acceptance bar in the trajectory
	// (workload-insensitive: always times the MobileNetV3 family).
	{id: "fwdbench", run: fixed(core.FwdBench)},
	// decisionhot is the decision-path microbenchmark: a tight loop of
	// router+schedule decisions with no queueing or arrival process —
	// its ns_per_op is the per-decision cost, the trajectory entry most
	// sensitive to decision fast-path regressions.
	{id: "decisionhot", workload: core.MobileNetV3,
		run: func(w core.Workload) (*core.Result, error) { return core.DecisionHot(w, 0) }},
}

// SetParallelExperiments flips the parallel experiment harness: when on
// (the default), independent grid points of the sweep experiments run
// across GOMAXPROCS workers with results folded in deterministic grid
// order, so a parallel run's output is byte-identical to a sequential
// one (sushi-bench -parallel).
var SetParallelExperiments = core.SetParallelExperiments

// SetSlowPath flips the process-wide decision slow path: systems
// deployed afterwards run the original unmemoized scan implementation
// of every scheduling/routing decision — the fast path's correctness
// oracle (sushi-bench -slowpath).
var SetSlowPath = core.SetSlowPath

// Measured-table calibration (the offline end of WithMeasuredTable).
type (
	// CalibrateOptions configures Calibrate: workload, candidate count,
	// repetitions, batch sizes, seed, and smoke-grid row/column caps.
	CalibrateOptions = core.CalibrateOptions
	// CalibrationFile is the versioned on-disk measured table: sweep
	// provenance (seed, reps, calib_ns yardstick), raw per-cell wall-ns
	// evidence, and the embedded latency table.
	CalibrationFile = calib.File
	// CalibrationReport is the per-cell predicted-vs-measured error
	// distribution against the analytic table (global scale fit plus
	// mean/p50/p95/max relative error).
	CalibrationReport = calib.Report
)

// Calibrate executes the workload's frontier SubNets through the fast
// inference engine and sweeps a measured (SubNet × cached SubGraph ×
// batch) latency table on THIS machine, returning the file (write it
// with WriteCalibrationFile, serve from it with LoadMeasuredTable +
// WithMeasuredTable) and the report comparing it against the analytic
// table a deployment would otherwise build.
func Calibrate(opt CalibrateOptions) (*CalibrationFile, *CalibrationReport, error) {
	return core.Calibrate(opt)
}

// WriteCalibrationFile writes a calibration table file to path.
var WriteCalibrationFile = calib.WriteFile

// Experiments lists the available experiment ids, in registry order.
func Experiments() []string {
	out := make([]string, len(experimentRegistry))
	for i, e := range experimentRegistry {
		out[i] = e.id
	}
	return out
}

func runExperiment(id string) (*core.Result, error) {
	name, w := splitID(id)
	for _, e := range experimentRegistry {
		if e.id != name {
			continue
		}
		if w == "" {
			w = e.workload
			if w == "" {
				w = core.ResNet50
			}
		}
		return e.run(w)
	}
	return nil, fmt.Errorf("sushi: unknown experiment %q (have %v)", id, Experiments())
}

// splitID separates an "id:workload" suffix; the workload is empty when
// absent (the registry entry's default applies).
func splitID(id string) (string, core.Workload) {
	for i := 0; i < len(id); i++ {
		if id[i] == ':' {
			return id[:i], core.Workload(id[i+1:])
		}
	}
	return id, ""
}
