// Package sushi is the public API of the SUSHI reproduction: a vertically
// integrated inference-serving stack for weight-shared DNNs (MLSys 2023,
// "Subgraph Stationary Hardware-Software Inference Co-Design").
//
// SUSHI serves a stream of queries, each annotated with an (accuracy,
// latency) constraint pair, on an accelerator with a Persistent Buffer
// that keeps a SubGraph of SuperNet weights stationary across queries
// (SubGraph Stationary, SGS). A state-aware scheduler decides per query
// which SubNet to activate and, every Q queries, which SubGraph to cache.
//
// Quickstart:
//
//	sys, err := sushi.New(sushi.Options{Workload: sushi.MobileNetV3})
//	if err != nil { ... }
//	res, err := sys.Serve(sushi.Query{MinAccuracy: 78, MaxLatency: 5e-3})
//	fmt.Printf("served %s at %.2f ms\n", res.SubNet, res.Latency*1e3)
//
// The deeper layers are available for direct use in advanced scenarios:
// the experiment harness regenerating every figure and table of the paper
// lives behind Experiment; the cmd/sushi-bench tool wraps it.
package sushi

import (
	"fmt"
	"strings"

	"sushi/internal/accel"
	"sushi/internal/core"
	"sushi/internal/sched"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

// Re-exported core types. Aliases keep the public surface small while the
// implementation stays in internal packages.
type (
	// Query is one inference request with its (A_t, L_t) constraints.
	Query = sched.Query
	// Served is the outcome of one query.
	Served = serving.Served
	// Summary aggregates a served stream.
	Summary = serving.Summary
	// Policy selects the hard constraint (StrictAccuracy/StrictLatency).
	Policy = sched.Policy
	// Mode selects the system variant (Full/StateUnaware/NoPB).
	Mode = serving.Mode
	// AccelConfig parameterizes the simulated accelerator.
	AccelConfig = accel.Config
	// Workload names a SuperNet family.
	Workload = core.Workload
	// Options configures New.
	Options = core.DeployOptions
	// Range is a constraint-sampling interval for workload generators.
	Range = workload.Range
	// Phase is one segment of a phased workload.
	Phase = workload.Phase
)

// Policies.
const (
	// StrictAccuracy serves the fastest SubNet meeting the accuracy bound.
	StrictAccuracy = sched.StrictAccuracy
	// StrictLatency serves the most accurate SubNet meeting the latency bound.
	StrictLatency = sched.StrictLatency
	// MinEnergy serves the lowest-energy SubNet meeting both bounds
	// (extension beyond the paper's Algorithm 1; see §7's energy remark).
	MinEnergy = sched.MinEnergy
)

// System variants (Fig. 16's comparison).
const (
	// Full is the complete SUSHI stack.
	Full = serving.Full
	// StateUnaware caches one static SubGraph ("Sushi w/o Sched").
	StateUnaware = serving.StateUnaware
	// NoPB disables the Persistent Buffer ("No-Sushi").
	NoPB = serving.NoPB
)

// Workloads.
const (
	// ResNet50 is the weight-shared OFA-ResNet50 family.
	ResNet50 = core.ResNet50
	// MobileNetV3 is the weight-shared OFA-MobileNetV3 family.
	MobileNetV3 = core.MobileNetV3
)

// Accelerator presets.
var (
	// ZCU104 is the embedded-board configuration (Tables 2-3).
	ZCU104 = accel.ZCU104
	// AlveoU50 is the datacenter-card configuration (§5.4).
	AlveoU50 = accel.AlveoU50
	// RooflineStudy is the analytic-model configuration (§5.2).
	RooflineStudy = accel.RooflineStudy
)

// Workload generators (seeded, deterministic).
var (
	// UniformWorkload draws n queries with uniform constraints.
	UniformWorkload = workload.Uniform
	// PhasedWorkload cycles through constraint phases.
	PhasedWorkload = workload.Phased
	// BurstyWorkload injects transient latency-budget crunches.
	BurstyWorkload = workload.Bursty
	// DriftingWorkload linearly interpolates constraints over the stream.
	DriftingWorkload = workload.Drifting
)

// Summarize folds a served stream into aggregate statistics.
var Summarize = serving.Summarize

// Timed serving (open-loop arrivals with queueing, §1's transient
// overload regime).
type (
	// TimedQuery is a query plus its arrival time.
	TimedQuery = serving.TimedQuery
	// TimedServed is a timed query's outcome (service + queueing).
	TimedServed = serving.TimedServed
	// TimedOptions controls the queueing discipline.
	TimedOptions = serving.TimedOptions
	// TimedSummary aggregates a timed session.
	TimedSummary = serving.TimedSummary
)

// SummarizeTimed folds a timed session.
var SummarizeTimed = serving.SummarizeTimed

// PoissonArrivals draws open-loop arrival times at the given rate.
var PoissonArrivals = workload.PoissonArrivals

// ServeTimed runs a timed stream through the system's single accelerator
// in arrival order (FIFO, non-preemptive).
func (s *System) ServeTimed(qs []TimedQuery, opt TimedOptions) ([]TimedServed, error) {
	return s.d.System.ServeTimed(qs, opt)
}

// System is a ready-to-serve SUSHI deployment.
type System struct {
	d *core.Deployment
}

// New builds a SUSHI system. Zero-valued options select ResNet50 on a
// ZCU104 with the full stack, STRICT_ACCURACY... see Options for fields.
func New(opt Options) (*System, error) {
	d, err := core.Deploy(opt)
	if err != nil {
		return nil, err
	}
	return &System{d: d}, nil
}

// Serve runs one query through the stack.
func (s *System) Serve(q Query) (Served, error) { return s.d.Serve(q) }

// ServeAll runs a query stream in order.
func (s *System) ServeAll(qs []Query) ([]Served, error) { return s.d.ServeAll(qs) }

// SubNetInfo describes one servable SubNet of the deployment.
type SubNetInfo struct {
	// Name is the frontier label ("A".."G").
	Name string
	// Accuracy is top-1 percent.
	Accuracy float64
	// WeightMB is the int8 weight footprint in MiB.
	WeightMB float64
	// GFLOPs is the forward-pass cost.
	GFLOPs float64
}

// Frontier lists the deployment's servable SubNets, smallest first.
func (s *System) Frontier() []SubNetInfo {
	out := make([]SubNetInfo, 0, len(s.d.Frontier))
	for _, sn := range s.d.Frontier {
		out = append(out, SubNetInfo{
			Name:     sn.Name,
			Accuracy: sn.Accuracy,
			WeightMB: float64(sn.WeightBytes()) / (1 << 20),
			GFLOPs:   float64(sn.FLOPs()) / 1e9,
		})
	}
	return out
}

// CacheState describes the Persistent Buffer's contents.
type CacheState struct {
	// Name is the cached SubGraph's identifier ("" when empty).
	Name string
	// Bytes is its weight footprint.
	Bytes int64
	// Swaps counts enacted cache updates; SwapBytes their DRAM traffic.
	Swaps     int
	SwapBytes int64
}

// Cache reports the current Persistent Buffer state.
func (s *System) Cache() CacheState {
	sim := s.d.System.Simulator()
	swaps, bytes := sim.Swaps()
	st := CacheState{Swaps: swaps, SwapBytes: bytes}
	if g := sim.Cached(); g != nil {
		st.Name = g.Name()
		st.Bytes = g.Bytes()
	}
	return st
}

// Experiment regenerates one of the paper's tables or figures by id
// (fig2, fig3, fig10..fig17, table1..table6, hitratio) and returns its
// rendered text. Workload-parameterized experiments accept "fig10:mobilenetv3"
// style suffixes; the default is resnet50.
func Experiment(id string) (string, error) {
	res, err := runExperiment(id)
	if err != nil {
		return "", err
	}
	return res.String(), nil
}

// ExperimentCSV regenerates an experiment and renders it as CSV (with
// notes as trailing '#' comment lines).
func ExperimentCSV(id string) (string, error) {
	res, err := runExperiment(id)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if err := res.WriteCSV(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

// Experiments lists the available experiment ids.
func Experiments() []string {
	return []string{
		"fig2", "fig3", "fig9", "fig10", "fig11", "fig12", "fig13a", "fig13b",
		"fig14", "fig15", "fig15acc", "fig16", "fig17",
		"table1", "table2", "table3", "table4", "table5", "table6",
		"hitratio", "ablation-avg", "overload",
	}
}

func runExperiment(id string) (*core.Result, error) {
	name, w := splitID(id)
	switch name {
	case "fig2":
		return core.Fig2(w)
	case "fig3":
		return core.Fig3()
	case "fig9":
		return core.Fig9(w)
	case "fig10":
		return core.Fig10(w)
	case "fig11":
		return core.Fig11(w)
	case "fig12":
		return core.Fig12(w)
	case "fig13a":
		return core.Fig13a()
	case "fig13b":
		return core.Fig13b(w)
	case "fig14":
		return core.Fig14()
	case "fig15":
		return core.Fig15(w, sched.StrictLatency, 0)
	case "fig15acc":
		return core.Fig15(w, sched.StrictAccuracy, 0)
	case "fig16":
		return core.Fig16(w, 0)
	case "fig17", "fig18":
		return core.Fig17(w, 0)
	case "table1":
		return core.Table1()
	case "table2":
		return core.Table2()
	case "table3":
		return core.Table3()
	case "table4":
		return core.Table4()
	case "table5":
		return core.Table5(w, 0)
	case "table6":
		return core.Table6(w)
	case "hitratio":
		return core.HitRatioA4(0)
	case "ablation-avg":
		return core.AblationAvg(w, 0)
	case "overload":
		return core.Overload(w, 0)
	default:
		return nil, fmt.Errorf("sushi: unknown experiment %q (have %v)", id, Experiments())
	}
}

func splitID(id string) (string, core.Workload) {
	for i := 0; i < len(id); i++ {
		if id[i] == ':' {
			return id[:i], core.Workload(id[i+1:])
		}
	}
	return id, core.ResNet50
}
