package sushi_test

// Bit-identity pin for the multi-tenant refactor (PR 5), in the spirit
// of PR 4's B=1 identity: single-model deployments must reproduce the
// pre-refactor engine bit for bit, per seed. The digests below were
// captured on the pre-refactor tree (commit ffd98e0) over two canonical
// configurations that together exercise the whole single-model stack —
// routing, admission control, load-aware debiting, drops, degradation,
// heterogeneous tables, re-caching and the micro-batch former. The
// digest deliberately excludes the dropped queries' Served.Query echo
// (zero before this PR; populated now so per-model drop accounting has
// a model id) — everything that determines timing, placement and
// service is covered.

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"sushi"
)

// outcomeDigest hashes every behavioural field of a simulated run.
func outcomeDigest(res *sushi.SimResult) string {
	h := sha256.New()
	for i, o := range res.Outcomes {
		fmt.Fprintf(h, "%d|%d|%d|%t|%d|%.12e|%.12e|%.12e|%.12e|%t\n",
			i, o.Replica, int(o.Reason), o.Degraded, o.Batch,
			o.Arrival, o.Start, o.Finish, o.RecacheSec, o.Dropped)
		if !o.Dropped {
			fmt.Fprintf(h, "%s|%d|%.12e|%.12e|%t|%t|%t|%t|%.12e|%d|%.12e\n",
				o.SubNet, o.Row, o.Latency, o.Accuracy,
				o.Feasible, o.LatencyMet, o.CacheSwapped, o.Recached,
				o.HitRatio, o.HitBytes, o.OffChipEnergyJ)
		}
	}
	fmt.Fprintf(h, "served=%d dropped=%d degraded=%d recaches=%d\n",
		res.Served, res.Dropped, res.Degraded, res.Recaches)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// identityRuns are the pinned configurations. Each builds a FRESH
// deployment (runs mutate cache state) and simulates a seeded stream.
var identityRuns = []struct {
	name   string
	golden string
	run    func(t *testing.T) *sushi.SimResult
}{
	{
		name:   "homogeneous-mbv3-degrade",
		golden: "0e71fc8a2c8c10705feab058cdd5d4ef90b76d5048120204e6a2a64823e752fa",
		run: func(t *testing.T) *sushi.SimResult {
			c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
				sushi.WithReplicas(4))
			if err != nil {
				t.Fatal(err)
			}
			qs, err := sushi.UniformWorkload(300,
				sushi.Range{Lo: 60, Hi: 80}, sushi.Range{Lo: 5e-3, Hi: 50e-3}, 7)
			if err != nil {
				t.Fatal(err)
			}
			arr, err := (sushi.OnOff{OnRate: 900, OffRate: 120, MeanOn: 0.12, MeanOff: 0.12}).Times(300, 7)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := sushi.TimedStream(qs, arr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Simulate(stream, sushi.SimOptions{
				QueueCap:  4,
				Admission: sushi.AdmitDegrade,
				LoadAware: true,
				Drop:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
	},
	{
		name:   "hetero-rn50-recache-batched",
		golden: "5b4ed29d7a561e3a6a52280ac868ca53b38c1111d53f06086ee0e8a6a4f3114b",
		run: func(t *testing.T) *sushi.SimResult {
			c, err := sushi.NewCluster(sushi.Options{Workload: sushi.ResNet50},
				sushi.WithHardware(sushi.ZCU104(), sushi.ZCU104(), sushi.AlveoU50(), sushi.AlveoU50()),
				sushi.WithRouter(sushi.Fastest),
				sushi.WithRecache(sushi.RecachePolicy{Window: 12, MinGain: 0.02, Cooldown: 12}),
				sushi.WithBatching(4, 10*time.Millisecond))
			if err != nil {
				t.Fatal(err)
			}
			qs, err := sushi.DriftingWorkload(300,
				sushi.Range{}, sushi.Range{},
				sushi.Range{Lo: 40e-3, Hi: 60e-3}, sushi.Range{Lo: 5e-3, Hi: 15e-3}, 11)
			if err != nil {
				t.Fatal(err)
			}
			arr, err := sushi.PoissonArrivals(300, 250, 11)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := sushi.TimedStream(qs, arr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Simulate(stream, sushi.SimOptions{
				QueueCap:  6,
				Admission: sushi.AdmitShedOldest,
				LoadAware: true,
				Drop:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
	},
}

// TestSingleModelBitIdentical is the refactor's safety property: a
// deployment that never names a model (no WithModels) must reproduce
// the pre-refactor outcomes bit for bit, per seed.
func TestSingleModelBitIdentical(t *testing.T) {
	for _, ir := range identityRuns {
		t.Run(ir.name, func(t *testing.T) {
			got := outcomeDigest(ir.run(t))
			if got != ir.golden {
				t.Errorf("single-model run diverged from the pre-refactor pin:\n  got    %s\n  golden %s", got, ir.golden)
			}
		})
	}
}
