package sushi_test

// Bit-identity pin for the multi-tenant refactor (PR 5), in the spirit
// of PR 4's B=1 identity: single-model deployments must reproduce the
// pre-refactor engine bit for bit, per seed. The digests below were
// captured on the pre-refactor tree (commit ffd98e0) over two canonical
// configurations that together exercise the whole single-model stack —
// routing, admission control, load-aware debiting, drops, degradation,
// heterogeneous tables, re-caching and the micro-batch former. The
// digest deliberately excludes the dropped queries' Served.Query echo
// (zero before this PR; populated now so per-model drop accounting has
// a model id) — everything that determines timing, placement and
// service is covered.
//
// PR 6 (elastic fleets) extends the pin: the SAME goldens must hold
// when the deployment carries a DISABLED autoscale config (Min == Max
// == N) — see TestAutoscaleDisabledBitIdentical.

import (
	"crypto/sha256"
	"fmt"
	"testing"
	"time"

	"sushi"
)

// outcomeDigest hashes every behavioural field of a simulated run.
func outcomeDigest(res *sushi.SimResult) string {
	h := sha256.New()
	for i, o := range res.Outcomes {
		fmt.Fprintf(h, "%d|%d|%d|%t|%d|%.12e|%.12e|%.12e|%.12e|%t\n",
			i, o.Replica, int(o.Reason), o.Degraded, o.Batch,
			o.Arrival, o.Start, o.Finish, o.RecacheSec, o.Dropped)
		if !o.Dropped {
			fmt.Fprintf(h, "%s|%d|%.12e|%.12e|%t|%t|%t|%t|%.12e|%d|%.12e\n",
				o.SubNet, o.Row, o.Latency, o.Accuracy,
				o.Feasible, o.LatencyMet, o.CacheSwapped, o.Recached,
				o.HitRatio, o.HitBytes, o.OffChipEnergyJ)
		}
	}
	fmt.Fprintf(h, "served=%d dropped=%d degraded=%d recaches=%d\n",
		res.Served, res.Dropped, res.Degraded, res.Recaches)
	return fmt.Sprintf("%x", h.Sum(nil))
}

// identityRuns are the pinned configurations. Each builds a FRESH
// deployment (runs mutate cache state) and simulates a seeded stream;
// extra cluster options compose onto the base deployment so the same
// run can be replayed with a pinned (Min == Max) autoscale config.
var identityRuns = []struct {
	name   string
	golden string
	run    func(t *testing.T, extra ...sushi.ClusterOption) *sushi.SimResult
}{
	{
		name:   "homogeneous-mbv3-degrade",
		golden: "0e71fc8a2c8c10705feab058cdd5d4ef90b76d5048120204e6a2a64823e752fa",
		run: func(t *testing.T, extra ...sushi.ClusterOption) *sushi.SimResult {
			opts := append([]sushi.ClusterOption{sushi.WithReplicas(4)}, extra...)
			c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			qs, err := sushi.UniformWorkload(300,
				sushi.Range{Lo: 60, Hi: 80}, sushi.Range{Lo: 5e-3, Hi: 50e-3}, 7)
			if err != nil {
				t.Fatal(err)
			}
			arr, err := (sushi.OnOff{OnRate: 900, OffRate: 120, MeanOn: 0.12, MeanOff: 0.12}).Times(300, 7)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := sushi.TimedStream(qs, arr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Simulate(stream, sushi.SimOptions{
				QueueCap:  4,
				Admission: sushi.AdmitDegrade,
				LoadAware: true,
				Drop:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
	},
	{
		name:   "multitenant-shared-traffic",
		golden: "8ba9902f121fda70153b510f56f6eac547c969024782fe31f2873371997478c5",
		run: func(t *testing.T, extra ...sushi.ClusterOption) *sushi.SimResult {
			opts := append([]sushi.ClusterOption{
				sushi.WithModels(sushi.ResNet50, sushi.MobileNetV3),
				sushi.WithReplicas(4),
				sushi.WithRouter(sushi.LeastLoaded),
				sushi.WithPartition(sushi.PartitionPolicy{Mode: sushi.PartitionTraffic}),
			}, extra...)
			c, err := sushi.NewCluster(sushi.Options{}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			// Anti-phase diurnal per-model streams: one model peaks while
			// the other troughs — the consolidation scenario that drives
			// traffic-weighted PB stealing.
			mix := sushi.Mix{Components: []sushi.MixComponent{
				{Model: string(sushi.ResNet50),
					Process: sushi.Diurnal{BaseRate: 60, Amplitude: 0.8, Period: 4}},
				{Model: string(sushi.MobileNetV3),
					Process: sushi.Diurnal{BaseRate: 120, Amplitude: 0.8, Period: 4, Phase: 3.14159265}},
			}}
			times, labels, err := mix.Labeled(300, 13)
			if err != nil {
				t.Fatal(err)
			}
			budget := map[string]float64{
				string(sushi.ResNet50):    60e-3,
				string(sushi.MobileNetV3): 20e-3,
			}
			qs := make([]sushi.TimedQuery, len(times))
			for i := range qs {
				qs[i] = sushi.TimedQuery{
					Query:   sushi.Query{ID: i, Model: labels[i], MaxLatency: budget[labels[i]]},
					Arrival: times[i],
				}
			}
			res, err := c.Simulate(qs, sushi.SimOptions{
				QueueCap:  3,
				Admission: sushi.AdmitReject,
				LoadAware: true,
				Drop:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
	},
	{
		name:   "hetero-rn50-recache-batched",
		golden: "5b4ed29d7a561e3a6a52280ac868ca53b38c1111d53f06086ee0e8a6a4f3114b",
		run: func(t *testing.T, extra ...sushi.ClusterOption) *sushi.SimResult {
			opts := append([]sushi.ClusterOption{
				sushi.WithHardware(sushi.ZCU104(), sushi.ZCU104(), sushi.AlveoU50(), sushi.AlveoU50()),
				sushi.WithRouter(sushi.Fastest),
				sushi.WithRecache(sushi.RecachePolicy{Window: 12, MinGain: 0.02, Cooldown: 12}),
				sushi.WithBatching(4, 10*time.Millisecond),
			}, extra...)
			c, err := sushi.NewCluster(sushi.Options{Workload: sushi.ResNet50}, opts...)
			if err != nil {
				t.Fatal(err)
			}
			qs, err := sushi.DriftingWorkload(300,
				sushi.Range{}, sushi.Range{},
				sushi.Range{Lo: 40e-3, Hi: 60e-3}, sushi.Range{Lo: 5e-3, Hi: 15e-3}, 11)
			if err != nil {
				t.Fatal(err)
			}
			arr, err := sushi.PoissonArrivals(300, 250, 11)
			if err != nil {
				t.Fatal(err)
			}
			stream, err := sushi.TimedStream(qs, arr)
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Simulate(stream, sushi.SimOptions{
				QueueCap:  6,
				Admission: sushi.AdmitShedOldest,
				LoadAware: true,
				Drop:      true,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
	},
}

// TestSingleModelBitIdentical is the refactor's safety property: a
// deployment that never names a model (no WithModels) must reproduce
// the pre-refactor outcomes bit for bit, per seed.
func TestSingleModelBitIdentical(t *testing.T) {
	for _, ir := range identityRuns {
		t.Run(ir.name, func(t *testing.T) {
			got := outcomeDigest(ir.run(t))
			if got != ir.golden {
				t.Errorf("single-model run diverged from the pre-refactor pin:\n  got    %s\n  golden %s", got, ir.golden)
			}
		})
	}
}

// TestSingleCohortPoissonClusterIdentity is PR 8's inert-layer pin at
// cluster level: a one-cohort Poisson Population driven through
// SimulatePopulation must reproduce — bit for bit — a plain Simulate
// over Poisson arrivals carrying the same constant budget/accuracy
// marks. Single-value Empiricals make the marks deterministic, so the
// two runs present identical streams; any digest divergence means the
// cohort layer perturbed arrival or mint order.
func TestSingleCohortPoissonClusterIdentity(t *testing.T) {
	const (
		n    = 300
		rate = 400.0
		seed = int64(19)
	)
	deploy := func() *sushi.Cluster {
		c, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
			sushi.WithReplicas(4))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	opt := sushi.SimOptions{
		QueueCap:  4,
		Admission: sushi.AdmitDegrade,
		LoadAware: true,
		Drop:      true,
	}
	pop := sushi.Population{Cohorts: []sushi.Cohort{{
		Rate:     rate,
		SLOClass: "gold",
		Budget:   sushi.Empirical{Values: []float64{12e-3}},
		Accuracy: sushi.Empirical{Values: []float64{65}},
	}}}
	viaPop, err := deploy().SimulatePopulation(n, pop, seed, opt)
	if err != nil {
		t.Fatal(err)
	}

	arr, err := sushi.PoissonArrivals(n, rate, seed)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]sushi.TimedQuery, n)
	for i := range qs {
		qs[i] = sushi.TimedQuery{
			Query:   sushi.Query{ID: i, Class: "gold", MaxLatency: 12e-3, MinAccuracy: 65},
			Arrival: arr[i],
		}
	}
	viaPlain, err := deploy().Simulate(qs, opt)
	if err != nil {
		t.Fatal(err)
	}
	if dp, ds := outcomeDigest(viaPop), outcomeDigest(viaPlain); dp != ds {
		t.Errorf("single-cohort population diverged from plain Poisson:\n  population %s\n  plain      %s", dp, ds)
	}
}

// TestCohortPopulationGoldenDigest pins the full cohort path — a
// skewed multi-class population over a multi-tenant fleet via the
// WithCohorts knob and SimulateCohorts — to a digest captured on the
// tree that introduced it. Any change to cohort RNG derivation, mark
// drawing, label threading or merge order shows up here.
func TestCohortPopulationGoldenDigest(t *testing.T) {
	const golden = "9749e4d9b6577059f619c541db7db4ea3171dc45dec5b15a2f95a94556a72290"
	c, err := sushi.NewCluster(sushi.Options{},
		sushi.WithModels(sushi.ResNet50, sushi.MobileNetV3),
		sushi.WithReplicas(4),
		sushi.WithRouter(sushi.LeastLoaded),
		sushi.WithCohorts(
			sushi.Cohort{Rate: 120, SLOClass: "gold", Model: string(sushi.MobileNetV3),
				InterArrival: sushi.IAGamma, Shape: 0.3,
				Budget: sushi.Empirical{Values: []float64{10e-3, 20e-3}, Weights: []float64{3, 1}}},
			sushi.Cohort{Rate: 60, SLOClass: "silver", Model: string(sushi.ResNet50),
				InterArrival: sushi.IAWeibull, Shape: 0.7,
				Budget: sushi.Empirical{Values: []float64{60e-3}}},
			sushi.Cohort{Rate: 40, SLOClass: "batch", Model: string(sushi.MobileNetV3),
				Budget:   sushi.Empirical{Values: []float64{40e-3}},
				Accuracy: sushi.Empirical{Values: []float64{60, 70}}},
		),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.SimulateCohorts(400, 31, sushi.SimOptions{
		QueueCap:  4,
		Admission: sushi.AdmitReject,
		LoadAware: true,
		Drop:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := outcomeDigest(res); got != golden {
		t.Errorf("cohort population run diverged from its pin:\n  got    %s\n  golden %s", got, golden)
	}
	// The classed breakdown must be present and cover every cohort class.
	if len(res.Summary.PerClass) != 3 {
		t.Fatalf("got %d SLO classes, want 3: %+v", len(res.Summary.PerClass), res.Summary.PerClass)
	}
	if res.Summary.FairnessJain <= 0 || res.Summary.FairnessJain > 1 {
		t.Errorf("Jain index %g outside (0, 1]", res.Summary.FairnessJain)
	}
}

// TestAutoscaleDisabledBitIdentical is the elastic-fleet safety
// property: the SAME goldens must hold when every deployment carries a
// pinned autoscale config (Min == Max == replica count). A pinned
// config is Enabled() == false, so no evaluation events fire, no
// replica ever leaves Active, and the engine takes the fixed-fleet
// fast path — across homogeneous, multi-tenant and
// hetero+recache+batched configurations.
func TestAutoscaleDisabledBitIdentical(t *testing.T) {
	pin := sushi.WithAutoscale(sushi.AutoscaleOptions{
		Min: 4, Max: 4, Policy: "utilization", Interval: 0.05,
	})
	for _, ir := range identityRuns {
		t.Run(ir.name, func(t *testing.T) {
			got := outcomeDigest(ir.run(t, pin))
			if got != ir.golden {
				t.Errorf("Min == Max autoscale run diverged from the fixed-fleet pin:\n  got    %s\n  golden %s", got, ir.golden)
			}
		})
	}
}
