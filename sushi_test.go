package sushi

import (
	"strings"
	"testing"
)

func TestNewDefaultsServe(t *testing.T) {
	sys, err := New(Options{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	fr := sys.Frontier()
	if len(fr) != 7 {
		t.Fatalf("frontier %d, want 7", len(fr))
	}
	for i := 1; i < len(fr); i++ {
		if fr[i].Accuracy <= fr[i-1].Accuracy || fr[i].GFLOPs <= fr[i-1].GFLOPs {
			t.Errorf("frontier not monotone at %d: %+v vs %+v", i, fr[i-1], fr[i])
		}
	}
	res, err := sys.Serve(Query{ID: 0, MinAccuracy: fr[2].Accuracy, MaxLatency: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < fr[2].Accuracy {
		t.Errorf("served %.2f%% below constraint %.2f%%", res.Accuracy, fr[2].Accuracy)
	}
}

func TestServeAllAndSummarize(t *testing.T) {
	sys, err := New(Options{Workload: MobileNetV3, Policy: StrictLatency})
	if err != nil {
		t.Fatal(err)
	}
	qs, err := UniformWorkload(50, Range{Lo: 76, Hi: 80}, Range{Lo: 2e-3, Hi: 8e-3}, 9)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.ServeAll(qs)
	if err != nil {
		t.Fatal(err)
	}
	sum := Summarize(rs)
	if sum.Queries != 50 || sum.AvgLatency <= 0 {
		t.Fatalf("bad summary %+v", sum)
	}
}

func TestCacheState(t *testing.T) {
	sys, err := New(Options{Workload: MobileNetV3})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Cache()
	if st.Name == "" || st.Bytes <= 0 {
		t.Fatalf("full system should boot with a cached SubGraph: %+v", st)
	}
	noPB, err := New(Options{Workload: MobileNetV3, Mode: NoPB})
	if err != nil {
		t.Fatal(err)
	}
	if st := noPB.Cache(); st.Name != "" || st.Bytes != 0 {
		t.Fatalf("NoPB system should have an empty cache: %+v", st)
	}
}

func TestExperimentDispatch(t *testing.T) {
	// Smoke-test the cheap experiments through the public API; the
	// expensive ones are exercised in internal/core and the benchmarks.
	for _, id := range []string{"table1", "table2", "table3", "table4", "fig3"} {
		out, err := Experiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "==") {
			t.Errorf("%s: output not rendered: %q", id, out[:40])
		}
	}
	if _, err := Experiment("fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(Experiments()) < 15 {
		t.Error("experiment list too short")
	}
}

// TestEveryListedExperimentRuns pins the registry invariant: every id
// Experiments() advertises must dispatch AND run (the old switch once
// dispatched "fig18" without listing it — the reverse drift, a listed id
// that fails to dispatch, would surface here too).
func TestEveryListedExperimentRuns(t *testing.T) {
	for _, id := range Experiments() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := Experiment(id)
			if err != nil {
				t.Fatalf("listed experiment does not run: %v", err)
			}
			if !strings.Contains(out, "==") {
				t.Errorf("output not rendered: %.40q", out)
			}
		})
	}
}

func TestExperimentWorkloadSuffix(t *testing.T) {
	out, err := Experiment("fig2:mobilenetv3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "MobV3") {
		t.Errorf("workload suffix ignored: %s", out[:80])
	}
	if _, err := Experiment("fig2:alexnet"); err == nil {
		t.Error("bogus workload accepted")
	}
}

func TestPresetsExposed(t *testing.T) {
	for _, cfg := range []AccelConfig{ZCU104(), AlveoU50(), RooflineStudy()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}
