package sushi_test

// Trace v2 end-to-end contract (PR 8): recording a cohort population,
// encoding the trace to bytes, decoding it back and replaying the
// decoded queries on a FRESH identical deployment reproduces the live
// simulation bit for bit — across the hardest configuration the stack
// offers (multi-tenant models + an elastic autoscaling fleet). The
// committed goldens pin the whole chain: cohort RNG derivation, the
// wire format, the replay mint and the engine itself.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"

	"sushi"
)

// tracePopulation targets both fleet models with mixed inter-arrival
// laws and empirical marks — every field the trace format carries.
func tracePopulation() sushi.Population {
	return sushi.Population{Cohorts: []sushi.Cohort{
		{Rate: 150, SLOClass: "gold", Model: string(sushi.MobileNetV3),
			InterArrival: sushi.IAGamma, Shape: 0.35,
			Budget: sushi.Empirical{Values: []float64{8e-3, 15e-3}, Weights: []float64{2, 1}}},
		{Rate: 50, SLOClass: "silver", Model: string(sushi.ResNet50),
			InterArrival: sushi.IAWeibull, Shape: 0.8,
			Budget:   sushi.Empirical{Values: []float64{60e-3}},
			Accuracy: sushi.Empirical{Values: []float64{70, 74}}},
		{Rate: 50, SLOClass: "batch", Model: string(sushi.MobileNetV3),
			Budget: sushi.Empirical{Values: []float64{40e-3}}},
	}}
}

// traceDeploy builds the multi-tenant ELASTIC fleet the round trip
// runs on; each call is fresh (runs mutate cache state).
func traceDeploy(t *testing.T) *sushi.Cluster {
	t.Helper()
	c, err := sushi.NewCluster(sushi.Options{},
		sushi.WithModels(sushi.ResNet50, sushi.MobileNetV3),
		sushi.WithReplicas(6),
		sushi.WithRouter(sushi.LeastLoaded),
		sushi.WithAutoscale(sushi.AutoscaleOptions{
			Min: 2, Max: 6, Policy: "utilization", Interval: 0.05,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func traceSimOpts() sushi.SimOptions {
	return sushi.SimOptions{
		QueueCap:  4,
		Admission: sushi.AdmitReject,
		LoadAware: true,
		Drop:      true,
	}
}

// TestTraceV2RecordReplayBitExact is the headline assertion: live
// cohort run == decode(encode(record)) replayed, as a full
// reflect.DeepEqual over the Result, plus committed sha256 goldens
// over the outcome stream and the summary.
func TestTraceV2RecordReplayBitExact(t *testing.T) {
	const (
		n    = 500
		seed = int64(41)
	)
	const (
		goldenOutcomes = "743563ecf98048a85309629c3ac00070366e55761a5042e2ab17e81ceb04aecb"
		goldenSummary  = "905ed850eb1ddf769585080ab519fb69c6642c31bf62e79926bb5cef9f28bb18"
	)
	pop := tracePopulation()

	live, err := traceDeploy(t).SimulatePopulation(n, pop, seed, traceSimOpts())
	if err != nil {
		t.Fatal(err)
	}

	// Record the SAME population/seed, push it through the wire format.
	tr, err := pop.Record(n, seed)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Seed != seed || len(tr.Records) != n || len(tr.Cohorts) != len(pop.Cohorts) {
		t.Fatalf("trace header mismatch: seed=%d records=%d cohorts=%d",
			tr.Seed, len(tr.Records), len(tr.Cohorts))
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := sushi.DecodeTraceV2(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, tr) {
		t.Fatal("decode(encode(trace)) is not deep-equal to the recorded trace")
	}

	// Replay the decoded trace on a fresh identical deployment.
	qs, err := decoded.Queries(n)
	if err != nil {
		t.Fatal(err)
	}
	times, err := decoded.Times(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	tqs := make([]sushi.TimedQuery, n)
	for i := range tqs {
		tqs[i] = sushi.TimedQuery{Query: qs[i], Arrival: times[i]}
	}
	replay, err := traceDeploy(t).Simulate(tqs, traceSimOpts())
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(replay, live) {
		t.Errorf("replayed Result is not deep-equal to the live run:\n  live   served=%d dropped=%d scaleups=%d\n  replay served=%d dropped=%d scaleups=%d",
			live.Served, live.Dropped, live.ScaleUps,
			replay.Served, replay.Dropped, replay.ScaleUps)
	}
	if got := outcomeDigest(replay); got != goldenOutcomes {
		t.Errorf("replay outcome digest diverged:\n  got    %s\n  golden %s", got, goldenOutcomes)
	}
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", replay.Summary)))
	if got := fmt.Sprintf("%x", sum); got != goldenSummary {
		t.Errorf("replay summary digest diverged:\n  got    %s\n  golden %s", got, goldenSummary)
	}
	// An elastic run that never scales is not exercising the elastic
	// path — guard the scenario itself.
	if live.ScaleUps+live.ScaleDowns == 0 {
		t.Error("elastic round-trip scenario produced no scaling events")
	}
}

// TestTraceV2TypedErrorsPublic re-states the decoder's error contract
// at the public face: foreign versions and truncated files surface as
// the exported typed errors, usable with errors.As from client code.
func TestTraceV2TypedErrorsPublic(t *testing.T) {
	tr, err := tracePopulation().Record(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	versioned := append([]byte(nil), raw...)
	binary.LittleEndian.PutUint16(versioned[8:10], 7)
	_, err = sushi.DecodeTraceV2(bytes.NewReader(versioned))
	var verr *sushi.TraceVersionError
	if !errors.As(err, &verr) || verr.Got != 7 {
		t.Errorf("version mismatch: got %v, want *TraceVersionError{Got: 7}", err)
	}

	_, err = sushi.DecodeTraceV2(bytes.NewReader(raw[:len(raw)-3]))
	var derr *sushi.TraceDecodeError
	if !errors.As(err, &derr) {
		t.Errorf("truncation: got %v, want *TraceDecodeError", err)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncation does not wrap io.ErrUnexpectedEOF: %v", err)
	}
}
