// Command openloop demonstrates the virtual-time open-loop simulation
// surface: diurnal (sinusoidal-rate) traffic against a 4-replica SUSHI
// cluster, swept from below to far above aggregate service capacity,
// once per admission policy. Virtual time means each sweep point —
// thousands of arrivals, minutes of simulated wall clock — evaluates in
// milliseconds, deterministically per seed.
//
// The printed table is the systems story in miniature: below capacity
// every policy is equivalent; past saturation they trade differently —
// reject refuses work at the door and keeps goodput highest, shed-oldest
// favours fresh queries over stale ones, and degrade refuses nothing,
// serving the most queries by downgrading them to the fastest SubNet
// (SUSHI's accuracy/latency navigation applied as an admission valve) at
// the cost of deeper queues and a lower strict-SLO score.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	const (
		replicas = 4
		queries  = 600
		budget   = 8e-3 // generous: admits every SubNet with headroom
		seed     = 7
	)
	// One replica serves ~1/budget qps worst-case; the cluster R times
	// that.
	capacity := float64(replicas) / budget

	fmt.Printf("open-loop diurnal traffic, %d replicas, budget %.0f ms, aggregate capacity ~%.0f qps\n\n",
		replicas, budget*1e3, capacity)
	fmt.Printf("%-12s  %-6s  %12s  %12s  %8s  %14s  %s\n",
		"admission", "load", "offered(qps)", "p99 e2e(ms)", "SLO%", "goodput(qps)", "served/shed/rejected/degraded")

	for _, admission := range []struct {
		name string
		pol  sushi.AdmissionPolicy
	}{
		{"reject", sushi.AdmitReject},
		{"shed-oldest", sushi.AdmitShedOldest},
		{"degrade", sushi.AdmitDegrade},
	} {
		for _, factor := range []float64{0.5, 2.0, 6.0} {
			// Fresh deployment per point: simulation adapts cache state,
			// and fresh deployments keep the sweep reproducible.
			cluster, err := sushi.NewCluster(
				sushi.Options{Workload: sushi.MobileNetV3, Policy: sushi.StrictLatency},
				sushi.WithReplicas(replicas), sushi.WithRouter(sushi.LeastLoaded))
			if err != nil {
				log.Fatal(err)
			}
			// Day/night swing around the target load: peaks hit 1.8x the
			// sweep point's mean rate.
			process := sushi.Diurnal{
				BaseRate:  capacity * factor,
				Amplitude: 0.8,
				Period:    2.0,
			}
			arrivals, err := process.Times(queries, seed)
			if err != nil {
				log.Fatal(err)
			}
			qs := make([]sushi.Query, queries)
			for i := range qs {
				qs[i] = sushi.Query{ID: i, MaxLatency: budget}
			}
			stream, err := sushi.TimedStream(qs, arrivals)
			if err != nil {
				log.Fatal(err)
			}
			res, err := cluster.Simulate(stream, sushi.SimOptions{
				QueueCap:  4,
				Admission: admission.pol,
				LoadAware: true,
				Drop:      true,
				Router:    sushi.LeastLoaded,
			})
			if err != nil {
				log.Fatal(err)
			}
			sum := res.Summary
			fmt.Printf("%-12s  %-6s  %12.0f  %12.2f  %8.1f  %14.0f  %d/%d/%d/%d\n",
				admission.name, fmt.Sprintf("%.1fx", factor),
				res.OfferedRate, sum.P99E2E*1e3, sum.E2ESLO*100, sum.Goodput,
				res.Served, res.Shed, res.Rejected, res.Degraded)
		}
		fmt.Println()
	}
}
