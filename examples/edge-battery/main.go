// Edge-battery scenario (§1): a battery-powered edge device starts the
// day demanding full accuracy and gradually relaxes it as the battery
// drains, while the latency budget loosens (the user tolerates slower,
// cheaper answers to stretch runtime). Off-chip data movement dominates
// accelerator energy (§5.4.3), so the metric to watch is the off-chip
// energy per query — SGS caching cuts exactly that.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	// MinEnergy serves the cheapest SubNet that satisfies BOTH the
	// accuracy floor and the latency budget — the natural policy for a
	// battery-constrained device.
	sys, err := sushi.New(sushi.Options{
		Workload: sushi.MobileNetV3,
		Policy:   sushi.MinEnergy,
		Q:        4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fr := sys.Frontier()
	top := fr[len(fr)-1].Accuracy
	low := fr[0].Accuracy

	trace, err := sushi.DriftingWorkload(200,
		sushi.Range{Lo: top - 0.3, Hi: top}, // morning: peak accuracy
		sushi.Range{Lo: low, Hi: low + 0.3}, // evening: whatever fits
		sushi.Range{Lo: 2e-3, Hi: 3e-3},     // morning: snappy
		sushi.Range{Lo: 6e-3, Hi: 9e-3},     // evening: relaxed
		29)
	if err != nil {
		log.Fatal(err)
	}
	rs, err := sys.ServeAll(trace)
	if err != nil {
		log.Fatal(err)
	}

	// Report the day in quarters: served accuracy and energy both fall.
	quarter := len(rs) / 4
	fmt.Println("battery day in quarters:")
	for qi := 0; qi < 4; qi++ {
		part := rs[qi*quarter : (qi+1)*quarter]
		sum := sushi.Summarize(part)
		fmt.Printf("  Q%d: acc %.2f%%, lat %.3f ms, off-chip energy %.3f mJ (hit %.2f)\n",
			qi+1, sum.AvgAccuracy, sum.AvgLatency*1e3,
			sum.OffChipEnergyJ*1e3/float64(len(part)), sum.AvgHitRatio)
	}
	total := sushi.Summarize(rs)
	fmt.Printf("\nwhole day: %s\n", total)
	fmt.Printf("total off-chip energy %.2f mJ across %d queries\n",
		total.OffChipEnergyJ*1e3, total.Queries)
}
