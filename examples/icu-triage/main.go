// ICU triage scenario (§1): a bed-side stability-score service sees calm
// stretches punctuated by admission bursts. During a burst the latency
// budget collapses (many patients triaged at once); prediction quality is
// always a hard floor. The example contrasts the full SUSHI stack with
// the No-PB baseline on the identical burst trace — the accuracy stream
// is the same, the latency and SLO attainment are not.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	mkSystem := func(mode sushi.Mode) *sushi.System {
		sys, err := sushi.New(sushi.Options{
			Workload: sushi.MobileNetV3, // edge-class model at the bedside
			Policy:   sushi.StrictAccuracy,
			Mode:     mode,
			Q:        4,
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}

	probe := mkSystem(sushi.Full)
	fr := probe.Frontier()
	mid, err := probe.Serve(sushi.Query{MinAccuracy: fr[3].Accuracy, MaxLatency: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Accuracy floor between the mid and top SubNets; baseline latency
	// budget comfortable, bursts cut it to 40%.
	trace, err := sushi.BurstyWorkload(300,
		sushi.Range{Lo: fr[2].Accuracy, Hi: fr[5].Accuracy},
		sushi.Range{Lo: mid.Latency * 1.2, Hi: mid.Latency * 2.0},
		0.08, 0.4, 8, 13)
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []sushi.Mode{sushi.Full, sushi.NoPB} {
		sys := mkSystem(mode)
		rs, err := sys.ServeAll(trace)
		if err != nil {
			log.Fatal(err)
		}
		sum := sushi.Summarize(rs)
		fmt.Printf("%-16s avg %.3f ms | p99 %.3f ms | latency SLO %.1f%% | accuracy floor met %.1f%%\n",
			mode, sum.AvgLatency*1e3, sum.P99Latency*1e3,
			sum.LatencySLO*100, sum.AccuracySLO*100)
	}
	fmt.Println("\nthe accuracy stream is identical (STRICT_ACCURACY); the PB buys latency headroom during bursts")
}
