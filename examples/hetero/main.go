// Command hetero demonstrates heterogeneous accelerator fleets with
// dynamic SubGraph re-caching: a homogeneous 4x ZCU104 cluster against
// a mixed 2x ZCU104 + 2x AlveoU50 cluster, both serving the same seeded
// bursty arrival stream whose latency budgets tighten over time (a
// deadline crunch), so the served SubNet mix drifts from large to
// small.
//
// Each replica carries its own hardware configuration and its own
// SushiAbs latency table — the "fastest" router compares per-replica
// predicted latencies, so compute-heavy SubNets flow to the wide U50
// array while small SubNets stay on the embedded board (§5.4.2 at
// cluster scale). With re-caching enabled, each replica's cache
// management layer watches its served query mix and switches the
// Persistent Buffer to a better SubGraph when the drift leaves the
// boot-time choice behind; every switch is a modeled, non-free action
// charged as replica busy time in virtual seconds.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	const (
		queries = 400
		budget  = 8e-3
		seed    = 7
	)
	// Bursty arrivals: quiet valleys, 2.5x-capacity peaks.
	capacity := 4 / budget
	process := sushi.OnOff{
		OnRate:  capacity * 2.5,
		OffRate: capacity * 0.4,
		MeanOn:  0.2,
		MeanOff: 0.3,
	}
	arrivals, err := process.Times(queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	// Latency budgets drift from loose (the whole frontier fits — large
	// SubNets get served) to tight (only the small end fits): the served
	// mix moves, the boot-time cache goes stale, and the cache-management
	// layer has something real to chase.
	qs, err := sushi.DriftingWorkload(queries,
		sushi.Range{}, sushi.Range{},
		sushi.Range{Lo: budget * 0.7, Hi: budget},
		sushi.Range{Lo: 1.5e-3, Hi: 2.5e-3},
		seed)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := sushi.TimedStream(qs, arrivals)
	if err != nil {
		log.Fatal(err)
	}

	fleets := []struct {
		name string
		cfgs []sushi.AccelConfig
	}{
		{"4x ZCU104", []sushi.AccelConfig{
			sushi.ZCU104(), sushi.ZCU104(), sushi.ZCU104(), sushi.ZCU104()}},
		{"2x ZCU104 + 2x U50", []sushi.AccelConfig{
			sushi.ZCU104(), sushi.ZCU104(), sushi.AlveoU50(), sushi.AlveoU50()}},
	}
	fmt.Printf("heterogeneous fleets, drifting bursty traffic, %d queries, budget %.0f ms\n\n", queries, budget*1e3)
	fmt.Printf("%-20s  %12s  %12s  %8s  %8s  %10s  %12s\n",
		"fleet", "p50 e2e(ms)", "p99 e2e(ms)", "SLO%", "drops", "recaches", "recache(ms)")
	for _, fl := range fleets {
		cluster, err := sushi.NewCluster(
			sushi.Options{Workload: sushi.MobileNetV3, Policy: sushi.StrictLatency},
			sushi.WithHardware(fl.cfgs...),
			sushi.WithRouter(sushi.Fastest),
			sushi.WithRecache(sushi.RecachePolicy{Window: 12, MinGain: 0.02}))
		if err != nil {
			log.Fatal(err)
		}
		res, err := cluster.Simulate(stream, sushi.SimOptions{
			LoadAware: true,
			Drop:      true,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := res.Summary
		fmt.Printf("%-20s  %12.3f  %12.3f  %7.1f%%  %8d  %10d  %12.3f\n",
			fl.name, sum.P50E2E*1e3, sum.P99E2E*1e3, sum.E2ESLO*100,
			res.Dropped, res.Recaches, res.RecacheSec*1e3)
		for _, rv := range cluster.Replicas() {
			fmt.Printf("    replica %d: %-9s column %2d, %d recaches, cache %q\n",
				rv.ID, rv.Accel.Name, rv.CacheColumn, rv.Recaches, rv.Cache.Name)
		}
	}
	fmt.Println("\nre-caching is charged in virtual time: each switch occupies the replica for its PB fill")
}
