// Command batching demonstrates SubGraph-stationary micro-batching:
// the same overloaded Poisson stream played through a 2-replica SUSHI
// cluster with the batch former swept over B (queries per flush) and W
// (batching window).
//
// The mechanism is the paper's weight-traffic argument turned into a
// throughput lever: serving a SubNet is dominated by moving its weights
// (DRAM fetch, or Persistent-Buffer read for the cached SubGraph), so
// queries that resolve to the SAME scheduled SubNet can share one
// accelerator pass — the weights are fetched once, and each member pays
// only its own compute and activation traffic. Under load the queue
// always holds compatible queries, batches fill instantly, effective
// capacity rises, and goodput climbs while per-query energy falls. B=1
// is the unbatched engine, bit-identical per seed to a plain cluster.
package main

import (
	"fmt"
	"log"
	"time"

	"sushi"
)

func main() {
	const (
		replicas = 2
		queries  = 500
		svc      = 8e-3    // unbatched slowest-service anchor
		budget   = 4 * svc // E2E SLO, headroom for a full batch
		seed     = 11
	)
	capacity := float64(replicas) / svc
	rate := capacity * 2.5 // fixed offered load for every sweep point

	arr, err := (sushi.Poisson{Rate: rate}).Times(queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	qs := make([]sushi.Query, queries)
	for i := range qs {
		qs[i] = sushi.Query{ID: i, MaxLatency: budget}
	}
	stream, err := sushi.TimedStream(qs, arr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("micro-batching under %.1fx overload: %d replicas, %.0f qps offered, %.0f ms SLO\n\n",
		2.5, replicas, rate, budget*1e3)
	fmt.Printf("%-4s  %-7s  %-9s  %12s  %12s  %8s  %12s\n",
		"B", "W(ms)", "avg batch", "goodput(qps)", "p99 e2e(ms)", "SLO%", "energy/q(uJ)")

	for _, point := range []struct {
		b int
		w time.Duration
	}{
		{1, 0},
		{2, 4 * time.Millisecond},
		{4, 4 * time.Millisecond},
		{8, 4 * time.Millisecond},
	} {
		// A fresh cluster per point: caches adapt to traffic, and fresh
		// deployments keep every point per-seed reproducible.
		c, err := sushi.NewCluster(
			sushi.Options{Workload: sushi.MobileNetV3, Policy: sushi.StrictLatency},
			sushi.WithReplicas(replicas),
			sushi.WithRouter(sushi.LeastLoaded),
			sushi.WithBatching(point.b, point.w),
		)
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Simulate(stream, sushi.SimOptions{
			LoadAware: true,
			Drop:      true,
			Router:    sushi.LeastLoaded,
		})
		if err != nil {
			log.Fatal(err)
		}
		sum := res.Summary
		avgBatch := 1.0
		if sum.Batches > 0 {
			avgBatch = sum.AvgBatchSize
		}
		energy := 0.0
		if res.Served > 0 {
			energy = sum.OffChipEnergyJ / float64(res.Served) * 1e6
		}
		fmt.Printf("%-4d  %-7.1f  %-9.2f  %12.1f  %12.2f  %8.1f  %12.2f\n",
			point.b, point.w.Seconds()*1e3, avgBatch,
			sum.Goodput, sum.P99E2E*1e3, sum.E2ESLO*100, energy)
	}

	fmt.Println("\nreading the table: at fixed offered load, larger batches amortize the")
	fmt.Println("dominant weight fetch across members — goodput climbs, per-query energy")
	fmt.Println("falls, and the E2E tail shrinks as queues drain faster than they build.")
}
