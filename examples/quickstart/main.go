// Quickstart: build a SUSHI system, look at its Pareto frontier, and
// serve a handful of queries with different constraints.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	sys, err := sushi.New(sushi.Options{
		Workload: sushi.MobileNetV3,
		Policy:   sushi.StrictLatency,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("servable SubNets (the weight-shared Pareto frontier):")
	for _, sn := range sys.Frontier() {
		fmt.Printf("  %s: %.2f%% top-1, %.2f MB weights, %.2f GFLOPs\n",
			sn.Name, sn.Accuracy, sn.WeightMB, sn.GFLOPs)
	}

	queries := []sushi.Query{
		{ID: 0, MinAccuracy: 76, MaxLatency: 8e-3}, // generous budget
		{ID: 1, MinAccuracy: 76, MaxLatency: 3e-3}, // tight budget
		{ID: 2, MinAccuracy: 79, MaxLatency: 8e-3}, // high accuracy
	}
	fmt.Println("\nserving:")
	for _, q := range queries {
		r, err := sys.Serve(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  q%d (A>=%.0f%%, L<=%.0fms) -> SubNet %s: %.2f%% in %.3f ms (PB hit %.2f)\n",
			q.ID, q.MinAccuracy, q.MaxLatency*1e3,
			r.SubNet, r.Accuracy, r.Latency*1e3, r.HitRatio)
	}

	st := sys.Cache()
	fmt.Printf("\nPersistent Buffer: %s (%.2f MB cached)\n",
		st.Name, float64(st.Bytes)/(1<<20))
}
