// Command multitenant demonstrates multi-tenant SubGraph serving: one
// fleet co-hosting TWO weight-shared model families (ResNet50 and
// MobileNetV3) behind shared Persistent Buffers, against the
// traditional alternative of statically partitioning the hardware per
// model.
//
// The workload is the consolidation argument in miniature: two
// anti-correlated diurnal streams (phases π apart — ResNet50 peaks
// exactly while MobileNetV3 troughs, then they trade places) are
// superposed by sushi.Mix into one labelled arrival stream. A static
// 2+2 split is overloaded at every peak; the shared 4-replica fleet
// sees near-constant combined load and lends each model the other's
// idle capacity. Meanwhile the traffic-weighted partitioner re-splits
// each replica's Persistent Buffer as the mix swings, so the bursting
// model also holds the larger SubGraph cache.
package main

import (
	"fmt"
	"log"
	"math"

	"sushi"
)

func main() {
	const (
		queries = 400
		seed    = 11
		// Per-model latency budgets (seconds), generous enough that SLO
		// misses come from queueing, not service.
		rn50Budget = 80e-3
		mbv3Budget = 9e-3
	)
	budgets := map[string]float64{"resnet50": rn50Budget, "mobilenetv3": mbv3Budget}

	// Anti-phase diurnal arrival streams: each model peaks at ~1.7x the
	// capacity of HALF the fleet, calibrated in its own service units.
	mix := sushi.Mix{}
	phase := 0.0
	meanRate := 0.0
	for _, model := range []string{"resnet50", "mobilenetv3"} {
		base := 1.7 * (2 / (budgets[model] / 1.5)) / 2
		meanRate += base
		mix.Components = append(mix.Components, sushi.MixComponent{
			Model:   model,
			Process: sushi.Diurnal{BaseRate: base, Amplitude: 1, Period: 1.2, Phase: phase},
		})
		phase += math.Pi
	}
	times, labels, err := mix.Labeled(queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	stream := make([]sushi.TimedQuery, queries)
	for i := range stream {
		stream[i] = sushi.TimedQuery{
			Query:   sushi.Query{ID: i, Model: labels[i], MaxLatency: budgets[labels[i]]},
			Arrival: times[i],
		}
	}
	fmt.Printf("mixed stream: %d queries over %.2fs virtual (%s)\n\n",
		queries, times[queries-1], mix.Name())

	// One shared fleet: both models on every replica, one scheduler and
	// latency-table family per model, PB shares re-split by traffic.
	cluster, err := sushi.NewCluster(sushi.Options{Policy: sushi.StrictLatency},
		sushi.WithModels(sushi.ResNet50, sushi.MobileNetV3),
		sushi.WithReplicas(4),
		sushi.WithPartition(sushi.PartitionPolicy{Mode: sushi.PartitionTraffic}),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := cluster.Simulate(stream, sushi.SimOptions{
		QueueCap:  3,
		Admission: sushi.AdmitReject,
		LoadAware: true,
		Drop:      true,
	})
	if err != nil {
		log.Fatal(err)
	}

	sum := res.Summary
	fmt.Printf("shared 4-replica fleet: served %d/%d, goodput %.1f qps, SLO %.1f%%, p99 e2e %.2f ms\n",
		res.Served, res.Queries, sum.Goodput, sum.E2ESLO*100, sum.P99E2E*1e3)
	for _, ms := range sum.PerModel {
		fmt.Printf("  %-12s %4d queries  SLO %5.1f%%  p99 e2e %7.2f ms  avg acc %.2f%%\n",
			ms.Model, ms.Queries, ms.E2ESLO*100, ms.P99E2E*1e3, ms.AvgAccuracy)
	}

	fmt.Println("\nper-replica tenants (PB shares follow the traffic):")
	for _, rv := range cluster.Replicas() {
		fmt.Printf("  replica %d (%s):", rv.ID, rv.Accel.Name)
		for _, mv := range rv.Models {
			fmt.Printf("  %s col=%d share=%dKB", mv.Model, mv.CacheColumn, mv.PBShareKB)
		}
		fmt.Println()
	}
	fmt.Println("\nthe 'multitenant' experiment (sushi-bench multitenant) runs the full")
	fmt.Println("comparison against a static 2+2 hardware split at identical seeds.")
}
