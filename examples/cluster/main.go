// Cluster: serve one query stream three ways — round-robin, least
// loaded, and SubGraph-affinity routing — across four replica
// accelerators, and compare how much cross-query SubGraph-Stationary
// reuse each dispatcher preserves. Also demonstrates the open-loop
// ServeStream path with cancellation.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sushi"
)

func main() {
	qs, err := sushi.UniformWorkload(200,
		sushi.Range{Lo: 76, Hi: 80},     // accuracy floors
		sushi.Range{Lo: 2e-3, Hi: 8e-3}, // latency budgets
		7)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	fmt.Println("router          avg lat    p99 lat    hit ratio  swaps")
	for _, router := range []sushi.RouterKind{
		sushi.RoundRobin, sushi.LeastLoaded, sushi.Affinity,
	} {
		c, err := sushi.NewCluster(sushi.Options{
			Workload: sushi.MobileNetV3,
			Policy:   sushi.StrictLatency,
		}, sushi.WithReplicas(4), sushi.WithRouter(router))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := c.ServeAll(ctx, qs); err != nil {
			log.Fatal(err)
		}
		s := c.Stats()
		fmt.Printf("%-14s  %.3f ms   %.3f ms   %.3f      %d\n",
			router, s.AvgLatency*1e3, s.P99Latency*1e3, s.AvgHitRatio, s.CacheSwaps)
	}

	// Open-loop serving: queries stream in, results stream out, and a
	// deadline bounds the whole session.
	c, err := sushi.NewCluster(sushi.Options{
		Workload: sushi.MobileNetV3,
		Policy:   sushi.StrictLatency,
	}, sushi.WithReplicas(4), sushi.WithRouter(sushi.Affinity))
	if err != nil {
		log.Fatal(err)
	}
	streamCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	in := make(chan sushi.Query)
	go func() {
		defer close(in)
		for _, q := range qs {
			select {
			case in <- q:
			case <-streamCtx.Done():
				return
			}
		}
	}()
	served := 0
	for r := range c.ServeStream(streamCtx, in) {
		if r.Err == nil {
			served++
		}
	}
	fmt.Printf("\nopen-loop stream served %d/%d queries before the session deadline\n",
		served, len(qs))
	for _, rep := range c.Replicas() {
		fmt.Printf("  replica %d: %d queries, cached %s, hit %.3f\n",
			rep.ID, rep.Queries, rep.Cache.Name, rep.AvgHitRatio)
	}
}
