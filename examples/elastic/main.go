// Command elastic demonstrates an autoscaled SUSHI fleet: the
// deployment builds 8 replicas but only 2 admit queries at boot; as a
// diurnal load swings, the target-utilization policy boots standby
// replicas into the peak — each paying its cold Persistent Buffer fill
// in virtual time, the paper's re-cache cost applied to a scale-up —
// and drains them back out through the trough.
//
// The comparison run pins the same deployment at 6 replicas
// (Min == Max disables scaling and is bit-identical to a fixed fleet),
// showing the trade the autoscaler wins: fewer replica-seconds of
// admitting capacity AND better SLO attainment, because the elastic
// fleet is bigger than 6 exactly when the load needs it and smaller
// the rest of the time.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	const (
		queries = 500
		seed    = 7
		budget  = 9e-3 // seconds; generous over MobileNetV3 service latency
	)

	// One diurnal stream, two full day/night cycles: the mean offers
	// ~4x one replica's capacity, the peak ~8x.
	proc := sushi.Diurnal{BaseRate: 450, Amplitude: 1, Period: 0.55}
	times, err := proc.Times(queries, seed)
	if err != nil {
		log.Fatal(err)
	}
	stream := make([]sushi.TimedQuery, queries)
	for i := range stream {
		stream[i] = sushi.TimedQuery{
			Query:   sushi.Query{ID: i, MaxLatency: budget},
			Arrival: times[i],
		}
	}
	fmt.Printf("diurnal stream: %d queries over %.2fs virtual\n\n", queries, times[queries-1])

	// An elastic fleet: 8 replicas built (cache columns assigned up
	// front), 2..7 starting standby, scaled by the target-utilization
	// policy every 10 virtual milliseconds.
	cluster, err := sushi.NewCluster(
		sushi.Options{Workload: sushi.MobileNetV3, Policy: sushi.StrictLatency},
		sushi.WithRouter(sushi.LeastLoaded),
		sushi.WithAutoscale(sushi.AutoscaleOptions{
			Min: 2, Max: 8, Policy: "utilization", Interval: 10e-3,
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	opts := sushi.SimOptions{
		QueueCap:  4,
		Admission: sushi.AdmitReject,
		LoadAware: true,
		Drop:      true,
	}
	res, err := cluster.Simulate(stream, opts)
	if err != nil {
		log.Fatal(err)
	}
	sum := res.Summary
	fmt.Printf("elastic 2..8 fleet: served %d/%d, SLO %.1f%%, p99 e2e %.2f ms\n",
		res.Served, res.Queries, sum.E2ESLO*100, sum.P99E2E*1e3)
	fmt.Printf("  %d scale-ups, %d scale-downs, %.2f replica-seconds of admitting capacity\n",
		res.ScaleUps, res.ScaleDowns, res.ReplicaSeconds)
	for _, rv := range cluster.Replicas() {
		fmt.Printf("  replica %d: %-8s %4d queries routed\n",
			rv.ID, rv.State, res.ReplicaQueries[rv.ID])
	}

	// Control run on a FRESH deployment: the same stream against the
	// fleet pinned at 6 replicas (Min == Max == 6 disables scaling).
	pinned, err := sushi.NewCluster(
		sushi.Options{Workload: sushi.MobileNetV3, Policy: sushi.StrictLatency},
		sushi.WithRouter(sushi.LeastLoaded),
		sushi.WithReplicas(6),
	)
	if err != nil {
		log.Fatal(err)
	}
	fixed, err := pinned.Simulate(stream, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfixed 6-replica fleet: served %d/%d, SLO %.1f%%, p99 e2e %.2f ms, %.2f replica-seconds\n",
		fixed.Served, fixed.Queries, fixed.Summary.E2ESLO*100,
		fixed.Summary.P99E2E*1e3, fixed.ReplicaSeconds)
	fmt.Println("\nthe 'elastic' experiment (sushi-bench elastic) runs the calibrated")
	fmt.Println("comparison where the autoscaled fleet wins on both cost and SLO.")
}
