// Autonomous-vehicle scenario (§1): the on-board perception stack
// alternates between sparse suburban terrain (relaxed deadlines, cheap
// frames) and dense urban terrain (tight deadlines every frame). A single
// static model either misses urban deadlines or wastes suburban accuracy;
// SUSHI navigates the trade-off per frame and keeps the hot SubGraph
// resident across the phase.
package main

import (
	"fmt"
	"log"

	"sushi"
)

func main() {
	sys, err := sushi.New(sushi.Options{
		Workload: sushi.ResNet50,
		Policy:   sushi.StrictLatency, // deadlines are hard in an AV
		Q:        4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Learn the deployment's latency scale from the frontier extremes:
	// an impossible budget falls back to the fastest SubNet, a generous
	// one serves the most accurate.
	fast, err := sys.Serve(sushi.Query{MinAccuracy: 0, MaxLatency: 1e-9})
	if err != nil {
		log.Fatal(err)
	}
	slow, err := sys.Serve(sushi.Query{MinAccuracy: 0, MaxLatency: 1})
	if err != nil {
		log.Fatal(err)
	}

	trace, err := sushi.PhasedWorkload(240, []sushi.Phase{
		{
			Name:    "suburban",
			Queries: 60,
			Acc:     sushi.Range{Lo: 0, Hi: 0}, // no accuracy floor
			Lat:     sushi.Range{Lo: slow.Latency * 1.05, Hi: slow.Latency * 1.3},
		},
		{
			Name:    "urban",
			Queries: 60,
			Acc:     sushi.Range{Lo: 0, Hi: 0},
			Lat:     sushi.Range{Lo: fast.Latency * 1.05, Hi: fast.Latency * 1.6},
		},
	}, 7)
	if err != nil {
		log.Fatal(err)
	}

	results, err := sys.ServeAll(trace)
	if err != nil {
		log.Fatal(err)
	}

	// Per-phase report: which SubNets served each terrain, and deadline
	// attainment.
	report := func(name string, lo, hi int) {
		byNet := map[string]int{}
		met := 0
		var lat float64
		for _, r := range results[lo:hi] {
			byNet[r.SubNet]++
			if r.LatencyMet {
				met++
			}
			lat += r.Latency
		}
		n := hi - lo
		fmt.Printf("%-9s avg %.2f ms, deadlines met %d/%d, SubNet mix %v\n",
			name, lat/float64(n)*1e3, met, n, byNet)
	}
	fmt.Println("phase summaries (first cycle):")
	report("suburban", 0, 60)
	report("urban", 60, 120)

	sum := sushi.Summarize(results)
	fmt.Printf("\noverall: %s\n", sum)
	fmt.Printf("cache swaps tracked the terrain changes: %d swaps\n", sum.CacheSwaps)
}
