// Command sushi-server runs a SUSHI replica cluster behind a v1 HTTP API:
//
//	POST /v1/serve        {"min_accuracy": 78, "max_latency_ms": 5,
//	                       "deadline_ms": 20, "policy": "lat"}
//	POST /v1/serve/batch  NDJSON queries in, NDJSON outcomes out
//	POST /v1/simulate     open-loop virtual-time simulation
//	GET  /v1/replicas     per-replica hardware, cache state, queue depth
//	GET  /v1/frontier     servable SubNets
//	GET  /v1/cache        replica 0's Persistent Buffer state
//	GET  /v1/stats        cluster-wide aggregates
//	GET  /healthz
//
// Usage:
//
//	sushi-server [-addr :8080] [-w workload] [-policy acc|lat|energy]
//	             [-q period] [-replicas n] [-router kind] [-seed n]
//	             [-accels preset,preset,...] [-recache]
//	             [-batch n] [-batch-window dur]
//	             [-models workload,workload,...] [-partition static|traffic]
//	             [-autoscale min:max] [-autoscale-policy name]
//	             [-autoscale-interval s] [-autoscale-cooldown s]
//	             [-cohorts spec] [-table file] [-pprof addr]
//
// Router kinds: round-robin (default), least-loaded, affinity, fastest,
// random. The -accels flag boots a heterogeneous fleet, one preset per
// replica (zcu104, alveo-u50, roofline); -recache enables runtime
// SubGraph re-caching with the default policy. -batch enables
// SubGraph-stationary micro-batching: up to n concurrent same-SubNet
// queries per replica share one accelerator pass (weights fetched
// once), waiting at most -batch-window (default 2ms) for the batch to
// fill; the same B/W pair is the default batch former for
// POST /v1/simulate. -models boots a MULTI-TENANT fleet (mirroring the
// -accels pattern): every replica co-hosts one scheduler + latency
// table per listed model behind a shared Persistent Buffer, queries
// pick their model via the "model" request field, and -partition
// selects the shared-PB split (static equal shares, or traffic-weighted
// stealing). -autoscale min:max boots an ELASTIC fleet: max replicas
// built up front, min..max-1 starting in standby, with POST /v1/simulate
// runs letting -autoscale-policy (utilization, slo or saturation) move
// the admitting count between the bounds every -autoscale-interval
// virtual seconds (scale-ups pay the cold Persistent Buffer fill;
// scale-downs drain before retiring). Per-request autoscale_* knobs
// override the flags. -cohorts installs a client-cohort population as
// the deployment's default workload for POST /v1/simulate's "cohorts"
// process: ';'-separated cohorts of ','-separated k=v pairs (n, rate,
// ia=poisson|gamma|weibull, shape, class, model, budget=ms|ms|...,
// acc=pct|pct|...), e.g.
// "n=5,rate=40,ia=gamma,shape=0.3,class=gold,budget=8|12;rate=100,class=batch".
// Cohort queries carry SLO classes, so /v1/simulate and /v1/stats grow
// per_class slices and a Jain fairness index. -table serves from a
// MEASURED latency table written by sushi-bench -calibrate -table-out:
// the scheduler's per-(SubNet, cached-SubGraph) latencies come from the
// file instead of the analytic model, and the file's recorded workload
// overrides -w (the table rows must match that workload's frontier).
// -table composes with routers, -recache and -batch but not with
// -accels or -models (a measured table is specific to one accelerator
// and one model family). -pprof serves
// net/http/pprof on a SEPARATE
// listener (e.g. -pprof localhost:6060) for live CPU/heap profiling of
// a running server; it is off by default and should stay on loopback.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"strings"
	"time"

	"sushi/internal/accel"
	"sushi/internal/core"
	"sushi/internal/server"
	"sushi/internal/serving"
	"sushi/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		wl       = flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
		policy   = flag.String("policy", "acc", "default policy: acc, lat or energy")
		q        = flag.Int("q", 4, "cache-update period Q")
		replicas = flag.Int("replicas", 1, "replica deployments behind the dispatcher")
		router   = flag.String("router", core.RouterRoundRobin,
			"dispatch policy: round-robin, least-loaded, affinity, fastest or random")
		seed   = flag.Int64("seed", 1, "random-router seed")
		accels = flag.String("accels", "",
			"comma-separated per-replica hardware presets (zcu104, alveo-u50, roofline); overrides -replicas")
		recache = flag.Bool("recache", false,
			"enable runtime SubGraph re-caching (window-driven cache switching) on every replica")
		batch = flag.Int("batch", 0,
			"micro-batch size B: group up to B concurrent same-SubNet queries per replica into one accelerator pass (0/1 = off)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond,
			"longest a forming micro-batch waits to fill (wall clock; virtual seconds for /v1/simulate)")
		models = flag.String("models", "",
			"comma-separated model families every replica co-hosts (resnet50, mobilenetv3); overrides -w")
		partition = flag.String("partition", "static",
			"shared-PB cache partitioning for -models fleets: static or traffic")
		autoscale = flag.String("autoscale", "",
			"elastic-fleet bounds min:max (e.g. 2:8); boots max replicas with min..max-1 in standby")
		autoscalePolicy = flag.String("autoscale-policy", "utilization",
			"elastic-fleet scaling policy: utilization, slo or saturation")
		autoscaleInterval = flag.Float64("autoscale-interval", 0.25,
			"virtual seconds between autoscale policy evaluations")
		autoscaleCooldown = flag.Float64("autoscale-cooldown", 0,
			"minimum virtual seconds between enacted scale actions")
		cohorts = flag.String("cohorts", "",
			"client-cohort population spec for /v1/simulate's \"cohorts\" process (';'-separated cohorts of k=v pairs)")
		table = flag.String("table", "",
			"serve from a measured latency-table file (sushi-bench -calibrate -table-out); its workload overrides -w")
		pprofAddr = flag.String("pprof", "",
			"serve net/http/pprof on this extra address (e.g. localhost:6060); off when empty")
	)
	flag.Parse()

	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on the
		// default mux, which the API server (a dedicated handler) never
		// consults — debug endpoints stay off the public listener.
		go func() {
			log.Fatalf("sushi-server: -pprof: %v", http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	opt := core.DeployOptions{Workload: core.Workload(*wl), Q: *q}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("sushi-server: %v", err)
	}
	opt.Policy = pol
	copt := core.ClusterOptions{
		Replicas:   *replicas,
		Router:     *router,
		RouterSeed: *seed,
	}
	if *accels != "" {
		for _, name := range strings.Split(*accels, ",") {
			cfg, err := accel.Preset(strings.TrimSpace(name))
			if err != nil {
				log.Fatalf("sushi-server: -accels: %v", err)
			}
			copt.Accels = append(copt.Accels, cfg)
		}
		copt.Replicas = len(copt.Accels)
	}
	if *recache {
		copt.Recache = &serving.RecachePolicy{}
	}
	if *batch > 1 {
		copt.Batch = &serving.BatchPolicy{MaxBatch: *batch, Window: *batchWindow}
	}
	if *models != "" {
		for _, name := range strings.Split(*models, ",") {
			copt.Models = append(copt.Models, core.Workload(strings.TrimSpace(name)))
		}
		mode, err := serving.ParsePartitionMode(*partition)
		if err != nil {
			log.Fatalf("sushi-server: -partition: %v", err)
		}
		if len(copt.Models) > 1 {
			copt.Partition = &serving.PartitionPolicy{Mode: mode}
		}
	}
	if *autoscale != "" {
		var amin, amax int
		if _, err := fmt.Sscanf(*autoscale, "%d:%d", &amin, &amax); err != nil {
			log.Fatalf("sushi-server: -autoscale: want min:max (e.g. 2:8), got %q", *autoscale)
		}
		copt.Autoscale = &core.AutoscaleOptions{
			Min:      amin,
			Max:      amax,
			Policy:   *autoscalePolicy,
			Interval: *autoscaleInterval,
			Cooldown: *autoscaleCooldown,
		}
		// An elastic fleet is sized by its max bound; honor -replicas
		// only when the operator passed it explicitly.
		replicasSet := false
		flag.Visit(func(f *flag.Flag) { replicasSet = replicasSet || f.Name == "replicas" })
		if !replicasSet && *accels == "" {
			copt.Replicas = 0
		}
	}
	if *cohorts != "" {
		pop, err := workload.ParsePopulation(*cohorts)
		if err != nil {
			log.Fatalf("sushi-server: -cohorts: %v", err)
		}
		copt.Cohorts = &pop
	}
	if *table != "" {
		tab, w, err := core.LoadTableFile(*table)
		if err != nil {
			log.Fatalf("sushi-server: -table: %v", err)
		}
		opt.Workload = w
		copt.Table = tab
	}
	dep, err := core.DeployCluster(opt, copt)
	if err != nil {
		log.Fatalf("sushi-server: %v", err)
	}
	batching := "unbatched"
	if pol := dep.Cluster.BatchPolicy(); pol.Enabled() {
		batching = fmt.Sprintf("batch B=%d W=%v", pol.MaxBatch, pol.Window)
	}
	workloads := string(opt.Workload)
	if copt.Table != nil {
		workloads += " (measured table)"
	}
	if len(dep.Models) > 1 {
		names := make([]string, len(dep.Models))
		for i, md := range dep.Models {
			names[i] = md.Model
		}
		workloads = fmt.Sprintf("%s (%s partition)", strings.Join(names, "+"), *partition)
	}
	elastic := ""
	if a := dep.Autoscale; a != nil {
		elastic = fmt.Sprintf(", elastic %d:%d %s", a.Min, a.Max, a.Policy.Name())
	}
	fmt.Printf("sushi-server: %s (%s policy) on %s, %d replicas (%s router, %s%s), %d servable SubNets\n",
		workloads, *policy, *addr, dep.Cluster.Size(), dep.Cluster.RouterName(), batching, elastic, len(dep.Frontier))
	log.Fatal(http.ListenAndServe(*addr, server.New(dep)))
}
