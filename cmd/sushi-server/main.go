// Command sushi-server runs a SUSHI deployment behind an HTTP API:
//
//	POST /v1/serve    {"min_accuracy": 78, "max_latency_ms": 5}
//	GET  /v1/frontier  servable SubNets
//	GET  /v1/cache     Persistent Buffer state
//	GET  /v1/stats     running aggregates
//	GET  /healthz
//
// Usage:
//
//	sushi-server [-addr :8080] [-w workload] [-policy acc|lat] [-q period]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"sushi/internal/core"
	"sushi/internal/sched"
	"sushi/internal/server"
)

func main() {
	var (
		addr   = flag.String("addr", ":8080", "listen address")
		wl     = flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
		policy = flag.String("policy", "acc", "hard constraint: acc or lat")
		q      = flag.Int("q", 4, "cache-update period Q")
	)
	flag.Parse()

	opt := core.DeployOptions{Workload: core.Workload(*wl), Q: *q}
	switch *policy {
	case "acc":
		opt.Policy = sched.StrictAccuracy
	case "lat":
		opt.Policy = sched.StrictLatency
	default:
		log.Fatalf("sushi-server: unknown policy %q", *policy)
	}
	dep, err := core.Deploy(opt)
	if err != nil {
		log.Fatalf("sushi-server: %v", err)
	}
	fmt.Printf("sushi-server: %s (%s policy) on %s, %d servable SubNets\n",
		*wl, *policy, *addr, len(dep.Frontier))
	log.Fatal(http.ListenAndServe(*addr, server.New(dep)))
}
