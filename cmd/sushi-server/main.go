// Command sushi-server runs a SUSHI replica cluster behind a v1 HTTP API:
//
//	POST /v1/serve        {"min_accuracy": 78, "max_latency_ms": 5,
//	                       "deadline_ms": 20, "policy": "lat"}
//	POST /v1/serve/batch  NDJSON queries in, NDJSON outcomes out
//	GET  /v1/replicas     per-replica cache state, queue depth, hit ratio
//	GET  /v1/frontier     servable SubNets
//	GET  /v1/cache        replica 0's Persistent Buffer state
//	GET  /v1/stats        cluster-wide aggregates
//	GET  /healthz
//
// Usage:
//
//	sushi-server [-addr :8080] [-w workload] [-policy acc|lat|energy]
//	             [-q period] [-replicas n] [-router kind] [-seed n]
//
// Router kinds: round-robin (default), least-loaded, affinity, random.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"sushi/internal/core"
	"sushi/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		wl       = flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
		policy   = flag.String("policy", "acc", "default policy: acc, lat or energy")
		q        = flag.Int("q", 4, "cache-update period Q")
		replicas = flag.Int("replicas", 1, "replica deployments behind the dispatcher")
		router   = flag.String("router", core.RouterRoundRobin,
			"dispatch policy: round-robin, least-loaded, affinity or random")
		seed = flag.Int64("seed", 1, "random-router seed")
	)
	flag.Parse()

	opt := core.DeployOptions{Workload: core.Workload(*wl), Q: *q}
	pol, err := server.ParsePolicy(*policy)
	if err != nil {
		log.Fatalf("sushi-server: %v", err)
	}
	opt.Policy = pol
	dep, err := core.DeployCluster(opt, core.ClusterOptions{
		Replicas:   *replicas,
		Router:     *router,
		RouterSeed: *seed,
	})
	if err != nil {
		log.Fatalf("sushi-server: %v", err)
	}
	fmt.Printf("sushi-server: %s (%s policy) on %s, %d replicas (%s router), %d servable SubNets\n",
		*wl, *policy, *addr, dep.Cluster.Size(), dep.Cluster.RouterName(), len(dep.Frontier))
	log.Fatal(http.ListenAndServe(*addr, server.New(dep)))
}
