// Command sushi-serve runs a trace-driven serving simulation: it
// generates (or accepts) an annotated query stream, serves it through a
// SUSHI cluster (replicas serve concurrently; one replica reproduces the
// single-accelerator setup), and prints per-query outcomes plus the
// aggregate and per-replica summaries.
//
// Usage:
//
//	sushi-serve [-w workload] [-mode full|unaware|nopb] [-policy acc|lat]
//	            [-n queries] [-q period] [-trace kind] [-seed n]
//	            [-replicas n] [-router kind] [-v]
//
// Trace kinds: uniform (default), phased, bursty, drifting.
// Router kinds: round-robin (default), least-loaded, affinity, random.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sushi"
	"sushi/internal/trace"
)

func main() {
	var (
		wl        = flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
		mode      = flag.String("mode", "full", "system variant: full, unaware, nopb")
		policy    = flag.String("policy", "acc", "policy: acc (strict accuracy), lat (strict latency), energy (min energy under both)")
		n         = flag.Int("n", 100, "number of queries")
		q         = flag.Int("q", 4, "cache-update period Q")
		traceKind = flag.String("trace", "uniform", "trace kind: uniform, phased, bursty, drifting")
		seed      = flag.Int64("seed", 1, "workload seed")
		replicas  = flag.Int("replicas", 1, "replica deployments behind the dispatcher")
		router    = flag.String("router", "round-robin", "dispatch policy: round-robin, least-loaded, affinity, random")
		verb      = flag.Bool("v", false, "print every served query")
		out       = flag.String("o", "", "write the session as a JSON-lines trace to this file")
	)
	flag.Parse()

	opt := sushi.Options{Workload: sushi.Workload(*wl), Q: *q}
	switch *mode {
	case "full":
		opt.Mode = sushi.Full
	case "unaware":
		opt.Mode = sushi.StateUnaware
		opt.Candidates = 16
	case "nopb":
		opt.Mode = sushi.NoPB
	default:
		fatal("unknown mode %q", *mode)
	}
	switch *policy {
	case "acc":
		opt.Policy = sushi.StrictAccuracy
	case "lat":
		opt.Policy = sushi.StrictLatency
	case "energy":
		opt.Policy = sushi.MinEnergy
	default:
		fatal("unknown policy %q", *policy)
	}

	ctx := context.Background()
	cl, err := sushi.NewCluster(opt,
		sushi.WithReplicas(*replicas),
		sushi.WithRouter(sushi.RouterKind(*router)),
		sushi.WithRouterSeed(*seed))
	if err != nil {
		fatal("%v", err)
	}
	// Two probe queries learn the frontier's latency range so generated
	// constraints are meaningfully satisfiable. They pin the per-query
	// StrictAccuracy override so the range spans fastest→slowest SubNet
	// regardless of the session policy (under plain StrictLatency both
	// probes would serve the same most-accurate SubNet and the range
	// would collapse). They run through the cluster itself (rebuilding a
	// separate system would re-derive the whole latency table); their
	// slight cache-state nudge matches the single-system behaviour of
	// earlier versions.
	fr := cl.Frontier()
	accLo, accHi := fr[0].Accuracy, fr[len(fr)-1].Accuracy
	strictAcc := sushi.StrictAccuracy
	probeLo, err := cl.Serve(ctx, sushi.Query{MinAccuracy: 0, MaxLatency: 1, Policy: &strictAcc})
	if err != nil {
		fatal("%v", err)
	}
	probeHi, err := cl.Serve(ctx, sushi.Query{MinAccuracy: accHi, MaxLatency: 1, Policy: &strictAcc})
	if err != nil {
		fatal("%v", err)
	}
	latRange := sushi.Range{Lo: probeLo.Latency * 0.9, Hi: probeHi.Latency * 1.1}
	accRange := sushi.Range{Lo: accLo - 0.2, Hi: accHi}

	var qs []sushi.Query
	switch *traceKind {
	case "uniform":
		qs, err = sushi.UniformWorkload(*n, accRange, latRange, *seed)
	case "phased":
		qs, err = sushi.PhasedWorkload(*n, []sushi.Phase{
			{Name: "relaxed", Queries: 25, Acc: sushi.Range{Lo: accLo, Hi: accLo + 1}, Lat: latRange},
			{Name: "critical", Queries: 25, Acc: sushi.Range{Lo: accHi - 1, Hi: accHi}, Lat: latRange},
		}, *seed)
	case "bursty":
		qs, err = sushi.BurstyWorkload(*n, accRange, latRange, 0.1, 0.4, 6, *seed)
	case "drifting":
		qs, err = sushi.DriftingWorkload(*n,
			sushi.Range{Lo: accHi - 1, Hi: accHi}, sushi.Range{Lo: accLo, Hi: accLo + 1},
			sushi.Range{Lo: latRange.Lo, Hi: latRange.Lo * 1.5},
			sushi.Range{Lo: latRange.Hi * 0.8, Hi: latRange.Hi},
			*seed)
	default:
		fatal("unknown trace %q", *traceKind)
	}
	if err != nil {
		fatal("%v", err)
	}

	fmt.Printf("serving %d %s queries on %s (%s, %s policy, %d replicas, %s router)\n",
		len(qs), *traceKind, *wl, *mode, *policy, cl.Size(), cl.Router())
	rs, err := cl.ServeAll(ctx, qs)
	if err != nil {
		fatal("%v", err)
	}
	if *verb {
		for _, r := range rs {
			swap := ""
			if r.CacheSwapped {
				swap = " [cache swap]"
			}
			fmt.Printf("q%-4d A>=%.2f%% L<=%.2fms -> %s %.2f%% %.3fms hit=%.2f%s\n",
				r.Query.ID, r.Query.MinAccuracy, r.Query.MaxLatency*1e3,
				r.SubNet, r.Accuracy, r.Latency*1e3, r.HitRatio, swap)
		}
	}
	sum := sushi.Summarize(rs)
	fmt.Println(sum)
	// Per-replica aggregates also include the two range probes above.
	fmt.Println("per-replica (incl. 2 probe queries):")
	for _, rep := range cl.Replicas() {
		fmt.Printf("  replica %d (%s): %d queries, avg lat %.3f ms, hit %.2f, cache %s (%.2f MB), %d swaps moving %.2f MB\n",
			rep.ID, rep.State, rep.Queries, rep.AvgLatencyMS, rep.AvgHitRatio,
			rep.Cache.Name, rep.Cache.SizeMB, rep.Cache.Swaps, rep.Cache.SwapsMB)
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("%v", err)
		}
		tw := trace.NewWriter(f)
		if err := tw.WriteHeader(trace.Header{
			Workload: *wl, Mode: *mode, Policy: *policy, Q: *q,
			Accel: "ZCU104", Seed: *seed,
			Replicas: cl.Size(), Router: cl.Router(),
		}); err != nil {
			fatal("%v", err)
		}
		for _, r := range rs {
			if err := tw.Write(r); err != nil {
				fatal("%v", err)
			}
		}
		if err := tw.Flush(); err != nil {
			fatal("%v", err)
		}
		if err := f.Close(); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("trace written to %s (%d records)\n", *out, len(rs))
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sushi-serve: "+format+"\n", args...)
	os.Exit(1)
}
