// Command sushi-dse explores SushiAccel's design space (§5.3, Fig. 12):
// it sweeps the Persistent Buffer size, off-chip bandwidth and compute
// throughput under a fixed on-chip storage budget and reports the SGS
// latency saving of every point plus the best configuration.
//
// Usage:
//
//	sushi-dse [-w workload] [-pb list] [-bw list] [-tput list]
//
// Lists are comma-separated; PB sizes in KB, bandwidths in GB/s,
// throughputs in TFLOPS. Defaults reproduce Fig. 12's grid.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sushi/internal/accel"
	"sushi/internal/core"
	"sushi/internal/dse"
)

func main() {
	var (
		wl   = flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
		pbs  = flag.String("pb", "0,512,1024,1728,2560,4096", "PB sizes in KB")
		bws  = flag.String("bw", "9.6,19.2,38.4", "off-chip bandwidths in GB/s")
		tput = flag.String("tput", "0.324,0.648,1.296,2.592", "throughputs in TFLOPS")
	)
	flag.Parse()

	opt := dse.Options{Base: accel.RooflineStudy()}
	for _, s := range splitList(*pbs) {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			fatal("bad PB size %q: %v", s, err)
		}
		opt.PBSizes = append(opt.PBSizes, v<<10)
	}
	for _, s := range splitList(*bws) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal("bad bandwidth %q: %v", s, err)
		}
		opt.Bandwidths = append(opt.Bandwidths, v*1e9)
	}
	for _, s := range splitList(*tput) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			fatal("bad throughput %q: %v", s, err)
		}
		opt.Throughputs = append(opt.Throughputs, v*1e12)
	}

	super, err := core.BuildSuperNet(core.Workload(*wl))
	if err != nil {
		fatal("%v", err)
	}
	frontier, err := super.Frontier()
	if err != nil {
		fatal("%v", err)
	}
	pts, err := dse.Sweep(super, frontier, opt)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("%-8s %-9s %-7s %-10s %-11s %s\n",
		"PB(MB)", "BW(GB/s)", "TFLOPS", "base(ms)", "cached(ms)", "save%")
	for _, p := range pts {
		fmt.Printf("%-8.2f %-9.1f %-7.2f %-10.3f %-11.3f %.2f\n",
			float64(p.PBBytes)/(1<<20), p.OffChipBW/1e9, p.PeakFLOPS/1e12,
			p.BaseLatency*1e3, p.CachedLatency*1e3, p.TimeSavePct)
	}
	best, err := dse.Best(pts)
	if err != nil {
		fatal("%v", err)
	}
	fmt.Printf("\nbest: PB %.2f MB, %.1f GB/s, %.2f TFLOPS -> %.2f%% latency saving\n",
		float64(best.PBBytes)/(1<<20), best.OffChipBW/1e9, best.PeakFLOPS/1e12, best.TimeSavePct)
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sushi-dse: "+format+"\n", args...)
	os.Exit(1)
}
