// Command sushi-bench regenerates the tables and figures of the paper's
// evaluation (§5 and the appendix) on the simulated SushiAccel.
//
// Usage:
//
//	sushi-bench [-w workload] [experiment ...]
//	sushi-bench all
//	sushi-bench list
//
// Experiments: fig2 fig3 fig9 fig10 fig11 fig12 fig13a fig13b fig14
// fig15 fig15acc fig16 fig17 fig18 table1 table2 table3 table4 table5
// table6 hitratio ablation-avg overload loadsweep hetero (sushi-bench
// list prints the authoritative set). The -w flag
// (resnet50|mobilenetv3) applies to workload-parameterized experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sushi"
)

func main() {
	w := flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
	csvDir := flag.String("csv", "", "also write each experiment as CSV into this directory")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sushi-bench [-w workload] [-csv dir] [experiment ...|all|list]\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "experiments: %v\n", sushi.Experiments())
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range sushi.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = sushi.Experiments()
	}
	exit := 0
	for _, id := range ids {
		full := id
		switch id {
		case "fig2", "fig9", "fig10", "fig11", "fig12", "fig13b", "fig15", "fig15acc",
			"fig16", "fig17", "table5", "table6", "ablation-avg", "overload",
			"loadsweep", "hetero":
			full = id + ":" + *w
		}
		out, err := sushi.Experiment(full)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Print(out)
		if *csvDir != "" {
			csvOut, err := sushi.ExperimentCSV(full)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s csv: %v\n", id, err)
				exit = 1
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(csvOut), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
