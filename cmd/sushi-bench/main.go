// Command sushi-bench regenerates the tables and figures of the paper's
// evaluation (§5 and the appendix) on the simulated SushiAccel.
//
// Usage:
//
//	sushi-bench [-w workload] [-json] [-csv dir] [experiment ...]
//	sushi-bench all
//	sushi-bench list
//
// Experiments: fig2 fig3 fig9 fig10 fig11 fig12 fig13a fig13b fig14
// fig15 fig15acc fig16 fig17 fig18 table1 table2 table3 table4 table5
// table6 hitratio ablation-avg overload loadsweep hetero batchsweep
// (sushi-bench list prints the authoritative set). The -w flag
// (resnet50|mobilenetv3) applies to workload-parameterized experiments.
//
// With -json, the human-readable tables are replaced by one NDJSON
// record per experiment on stdout — name, ns_per_op (wall time of the
// run), and the experiment's headline metrics (goodput_qps, p99_e2e_ms
// where applicable) — so bench trajectories (BENCH_*.json) can be
// recorded by machines instead of scraped from prose.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sushi"
)

// benchRecord is one -json output line.
type benchRecord struct {
	// Name is the experiment id as invoked (without workload suffix).
	Name string `json:"name"`
	// Workload is the resolved workload for parameterized experiments.
	Workload string `json:"workload,omitempty"`
	// NsPerOp is the wall-clock time of the single run in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// GoodputQPS and P99MS surface the canonical open-loop headline
	// metrics when the experiment reports them (0 otherwise).
	GoodputQPS float64 `json:"goodput_qps,omitempty"`
	P99MS      float64 `json:"p99_ms,omitempty"`
	// Metrics carries every headline metric the experiment exported.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	w := flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
	csvDir := flag.String("csv", "", "also write each experiment as CSV into this directory")
	asJSON := flag.Bool("json", false, "emit one NDJSON record per experiment (name, ns_per_op, metrics) instead of text tables")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sushi-bench [-w workload] [-json] [-csv dir] [experiment ...|all|list]\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "experiments: %v\n", sushi.Experiments())
	}
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range sushi.Experiments() {
			fmt.Println(id)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = sushi.Experiments()
	}
	enc := json.NewEncoder(os.Stdout)
	exit := 0
	for _, id := range ids {
		full, workload := id, ""
		switch id {
		case "fig2", "fig9", "fig10", "fig11", "fig12", "fig13b", "fig15", "fig15acc",
			"fig16", "fig17", "table5", "table6", "ablation-avg", "overload",
			"loadsweep", "hetero", "batchsweep":
			full, workload = id+":"+*w, *w
		}
		start := time.Now()
		out, metrics, err := sushi.ExperimentWithMetrics(full)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		if *asJSON {
			rec := benchRecord{
				Name:       id,
				Workload:   workload,
				NsPerOp:    elapsed.Nanoseconds(),
				GoodputQPS: metrics["goodput_qps"],
				P99MS:      metrics["p99_e2e_ms"],
				Metrics:    metrics,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
				exit = 1
			}
		} else {
			fmt.Print(out)
		}
		if *csvDir != "" {
			csvOut, err := sushi.ExperimentCSV(full)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s csv: %v\n", id, err)
				exit = 1
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(csvOut), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}
