// Command sushi-bench regenerates the tables and figures of the paper's
// evaluation (§5 and the appendix) on the simulated SushiAccel.
//
// Usage:
//
//	sushi-bench [-w workload] [-json] [-csv dir] [-cpuprofile f] [-memprofile f] [experiment ...]
//	sushi-bench all
//	sushi-bench list
//	sushi-bench -record-trace f [-trace-queries n]
//	sushi-bench -replay-trace f [-json]
//	sushi-bench -calibrate [-w workload] [-table-out f] [-reps k] [-batches 1,2,4] [-calib-seed n] [-json]
//
// Experiments: fig2 fig3 fig9 fig10 fig11 fig12 fig13a fig13b fig14
// fig15 fig15acc fig16 fig17 fig18 table1 table2 table3 table4 table5
// table6 hitratio ablation-avg overload loadsweep hetero batchsweep
// multitenant elastic cohortsweep decisionhot (sushi-bench list prints
// the authoritative set). The -w flag (resnet50|mobilenetv3) applies to
// workload-parameterized experiments.
//
// -parallel (default on) runs independent grid points of the sweep
// experiments across GOMAXPROCS workers; results are folded in
// deterministic grid order, so output is byte-identical either way.
// -slowpath forces the original unmemoized decision scan path — the
// fast path's correctness oracle; identical output, slower.
//
// With -json, the human-readable tables are replaced by one NDJSON
// record per experiment on stdout — name, ns_per_op (wall time of the
// run), the experiment's headline metrics (goodput_qps, p99_e2e_ms
// where applicable), and calib_ns (a fixed arithmetic spin timed in
// the same process, for rescaling ns_per_op across machines) — so
// bench trajectories (BENCH_*.json) can be recorded by machines
// instead of scraped from prose.
//
// -calibrate sweeps a MEASURED latency table on this machine: every
// (frontier SubNet × candidate SubGraph × batch) cell is timed through
// the fast inference engine (median of -reps repetitions,
// deterministically seeded by -calib-seed), the predicted-vs-measured
// report is printed, and -table-out writes the versioned table file a
// deployment loads back with sushi.LoadMeasuredTable or sushi-server
// -table, plus a human-readable <file>.csv companion. -calib-rows/-calib-cols cap the grid for smoke runs. With
// -json the run emits one NDJSON calibration record (wall time,
// calib_ns, report error percentiles) joining the bench trajectory.
//
// -record-trace captures the cohortsweep experiment's skewed
// 100-cohort population as a versioned trace v2 file (-trace-queries
// sets the stream length, default 600); -replay-trace plays such a
// file back through a fresh cohortsweep fleet — same seed, same fleet,
// bit-exact outcomes — so a recorded workload reproduces anywhere.
//
// -cpuprofile and -memprofile write pprof profiles covering the whole
// experiment batch (the CPU profile spans every run; the heap profile
// is snapshotted at exit), for digging into engine hot paths with
// `go tool pprof`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sushi"
)

// benchRecord is one -json output line.
type benchRecord struct {
	// Name is the experiment id as invoked (without workload suffix).
	Name string `json:"name"`
	// Workload is the resolved workload for parameterized experiments.
	Workload string `json:"workload,omitempty"`
	// NsPerOp is the wall-clock time of the single run in nanoseconds.
	NsPerOp int64 `json:"ns_per_op"`
	// GoodputQPS and P99MS surface the canonical open-loop headline
	// metrics when the experiment reports them (0 otherwise).
	GoodputQPS float64 `json:"goodput_qps,omitempty"`
	P99MS      float64 `json:"p99_ms,omitempty"`
	// Metrics carries every headline metric the experiment exported.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// CalibNs is the wall time of a fixed arithmetic spin measured in
	// this same process — a machine-speed yardstick that lets trajectory
	// consumers (the CI bench-regression gate) rescale ns_per_op before
	// comparing runs from different machines or load phases.
	CalibNs int64 `json:"calib_ns,omitempty"`
	// WallMS is the experiment's wall-clock time in milliseconds
	// (NsPerOp in more convenient units; recorded so trajectories show
	// what the parallel harness buys per experiment).
	WallMS float64 `json:"wall_ms,omitempty"`
	// Parallel records whether the parallel experiment harness was on
	// for this run.
	Parallel bool `json:"parallel,omitempty"`
}

// calibSink defeats dead-code elimination of the calibration spin.
var calibSink uint64

// calibrate times a fixed xorshift64 spin (2e8 steps, a few hundred
// ms) and returns its wall time in nanoseconds. The loop touches no
// sushi code, so the yardstick moves with CPU speed and scheduler
// pressure but never with engine changes — exactly the part of
// ns_per_op drift a regression gate wants to divide out.
func calibrate() int64 {
	start := time.Now()
	x := uint64(88172645463325252)
	for i := 0; i < 200_000_000; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	calibSink = x
	return time.Since(start).Nanoseconds()
}

// parseBatches parses the -batches list ("1,2,4").
func parseBatches(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("batch %q: %w", p, err)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	// The profile writers run as defers, so the exit code must leave
	// through a return, not os.Exit.
	os.Exit(run())
}

func run() int {
	w := flag.String("w", "resnet50", "workload: resnet50 or mobilenetv3")
	csvDir := flag.String("csv", "", "also write each experiment as CSV into this directory")
	asJSON := flag.Bool("json", false, "emit one NDJSON record per experiment (name, ns_per_op, metrics) instead of text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile covering every experiment run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after a final GC) to this file at exit")
	recordTrace := flag.String("record-trace", "", "record the cohortsweep skewed population as a trace v2 file and exit")
	traceQueries := flag.Int("trace-queries", 0, "stream length for -record-trace (0 = the experiment default)")
	replayTrace := flag.String("replay-trace", "", "replay a trace v2 file through a fresh cohortsweep fleet and exit")
	doCalibrate := flag.Bool("calibrate", false, "sweep a measured latency table on this machine and print the calibration report")
	tableOut := flag.String("table-out", "", "write the measured table file here (with -calibrate)")
	calibReps := flag.Int("reps", 3, "median-of-k repetitions per calibration cell (with -calibrate)")
	calibBatches := flag.String("batches", "1,2,4", "comma-separated measured batch sizes, ascending from 1 (with -calibrate)")
	calibSeed := flag.Int64("calib-seed", 1, "seed for calibration candidates, weights and inputs (with -calibrate)")
	calibRows := flag.Int("calib-rows", 0, "cap measured frontier rows for smoke grids (0 = full frontier; capped tables cannot serve)")
	calibCols := flag.Int("calib-cols", 0, "cap measured candidate columns for smoke grids (0 = all)")
	parallel := flag.Bool("parallel", true, "run independent experiment grid points across GOMAXPROCS workers (results are folded in deterministic grid order, so output is identical either way)")
	slowPath := flag.Bool("slowpath", false, "force the unmemoized decision slow path (the fast path's correctness oracle; identical output, slower)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: sushi-bench [-w workload] [-json] [-csv dir] [-cpuprofile f] [-memprofile f] [experiment ...|all|list]\n")
		fmt.Fprintf(os.Stderr, "       sushi-bench -record-trace f [-trace-queries n] | -replay-trace f [-json]\n")
		fmt.Fprintf(os.Stderr, "       sushi-bench -calibrate [-w workload] [-table-out f] [-reps k] [-batches 1,2,4] [-calib-seed n] [-json]\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "experiments: %v\n", sushi.Experiments())
	}
	flag.Parse()
	sushi.SetParallelExperiments(*parallel)
	sushi.SetSlowPath(*slowPath)

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -cpuprofile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -cpuprofile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: -memprofile: %v\n", err)
			}
		}()
	}

	if *recordTrace != "" {
		tr, err := sushi.RecordCohortTrace(*traceQueries)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -record-trace: %v\n", err)
			return 1
		}
		f, err := os.Create(*recordTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -record-trace: %v\n", err)
			return 1
		}
		if err := tr.Encode(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "sushi-bench: -record-trace: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -record-trace: %v\n", err)
			return 1
		}
		fmt.Printf("sushi-bench: recorded %d queries (%d cohorts, seed %d) to %s\n",
			len(tr.Records), len(tr.Cohorts), tr.Seed, *recordTrace)
		return 0
	}
	if *replayTrace != "" {
		f, err := os.Open(*replayTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -replay-trace: %v\n", err)
			return 1
		}
		tr, err := sushi.DecodeTraceV2(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -replay-trace: %v\n", err)
			return 1
		}
		start := time.Now()
		out, metrics, err := sushi.ReplayTrace(tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -replay-trace: %v\n", err)
			return 1
		}
		if *asJSON {
			elapsed := time.Since(start)
			rec := benchRecord{
				Name:       "replay",
				NsPerOp:    elapsed.Nanoseconds(),
				GoodputQPS: metrics["goodput_qps"],
				P99MS:      metrics["p99_e2e_ms"],
				Metrics:    metrics,
				WallMS:     float64(elapsed.Nanoseconds()) / 1e6,
				Parallel:   *parallel,
			}
			if err := json.NewEncoder(os.Stdout).Encode(rec); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: -replay-trace: %v\n", err)
				return 1
			}
			return 0
		}
		fmt.Print(out)
		return 0
	}

	if *doCalibrate {
		batches, err := parseBatches(*calibBatches)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -batches: %v\n", err)
			return 2
		}
		// One spin serves as both the record yardstick and the value
		// embedded in the table file.
		calibNs := calibrate()
		start := time.Now()
		f, rep, err := sushi.Calibrate(sushi.CalibrateOptions{
			Workload: sushi.Workload(*w),
			Reps:     *calibReps,
			Batches:  batches,
			Seed:     *calibSeed,
			Rows:     *calibRows,
			Cols:     *calibCols,
			CalibNs:  calibNs,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: -calibrate: %v\n", err)
			return 1
		}
		elapsed := time.Since(start)
		if *tableOut != "" {
			if err := sushi.WriteCalibrationFile(*tableOut, f); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: -table-out: %v\n", err)
				return 1
			}
			// Human-readable companion; the gob file stays authoritative.
			cf, err := os.Create(*tableOut + ".csv")
			if err == nil {
				err = f.WriteCSV(cf)
				if cerr := cf.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: -table-out csv: %v\n", err)
				return 1
			}
		}
		if *asJSON {
			rec := benchRecord{
				Name:     "calibrate",
				Workload: *w,
				NsPerOp:  elapsed.Nanoseconds(),
				CalibNs:  calibNs,
				WallMS:   float64(elapsed.Nanoseconds()) / 1e6,
				Parallel: *parallel,
				Metrics: map[string]float64{
					"rows":              float64(len(f.SubNetNames)),
					"cols":              float64(len(f.GraphNames)),
					"batches":           float64(len(f.Batches)),
					"reps":              float64(f.Reps),
					"seed":              float64(f.Seed),
					"fetch_ns_per_byte": f.FetchNsPerByte,
					"report_scale":      rep.Scale,
					"mean_abs_err_pct":  100 * rep.MeanErr,
					"p95_abs_err_pct":   100 * rep.P95Err,
					"max_abs_err_pct":   100 * rep.MaxErr,
				},
			}
			if err := json.NewEncoder(os.Stdout).Encode(rec); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: -calibrate: %v\n", err)
				return 1
			}
			return 0
		}
		fmt.Printf("sushi-bench: calibrated %d x %d x %d cells (workload %s, seed %d, reps %d) in %.1fs\n",
			len(f.SubNetNames), len(f.GraphNames), len(f.Batches), *w, f.Seed, f.Reps, elapsed.Seconds())
		fmt.Print(rep.String())
		if *tableOut != "" {
			fmt.Printf("sushi-bench: wrote measured table to %s (+ %s.csv)\n", *tableOut, *tableOut)
		}
		return 0
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}
	if args[0] == "list" {
		for _, id := range sushi.Experiments() {
			fmt.Println(id)
		}
		return 0
	}
	ids := args
	if args[0] == "all" {
		ids = sushi.Experiments()
	}
	enc := json.NewEncoder(os.Stdout)
	var calibNs int64
	if *asJSON {
		calibNs = calibrate()
	}
	exit := 0
	for _, id := range ids {
		full, workload := id, ""
		switch id {
		case "fig2", "fig9", "fig10", "fig11", "fig12", "fig13b", "fig15", "fig15acc",
			"fig16", "fig17", "table5", "table6", "ablation-avg", "overload",
			"loadsweep", "hetero", "batchsweep":
			full, workload = id+":"+*w, *w
		}
		start := time.Now()
		out, metrics, err := sushi.ExperimentWithMetrics(full)
		elapsed := time.Since(start)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		if *asJSON {
			rec := benchRecord{
				Name:       id,
				Workload:   workload,
				NsPerOp:    elapsed.Nanoseconds(),
				GoodputQPS: metrics["goodput_qps"],
				P99MS:      metrics["p99_e2e_ms"],
				Metrics:    metrics,
				CalibNs:    calibNs,
				WallMS:     float64(elapsed.Nanoseconds()) / 1e6,
				Parallel:   *parallel,
			}
			if err := enc.Encode(rec); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
				exit = 1
			}
		} else {
			fmt.Print(out)
		}
		if *csvDir != "" {
			csvOut, err := sushi.ExperimentCSV(full)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s csv: %v\n", id, err)
				exit = 1
				continue
			}
			path := filepath.Join(*csvDir, id+".csv")
			if err := os.WriteFile(path, []byte(csvOut), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "sushi-bench: %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	return exit
}
