package sushi_test

// End-to-end pins for the measured-table loading path (PR 10): an
// analytic table pushed through the on-disk calibration envelope must
// come back bit for bit and serve bit-identically to the in-memory
// deployment, and a genuinely MEASURED sweep written by Calibrate must
// be loadable from disk and servable interchangeably with the analytic
// model.

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"sushi"
)

// TestAnalyticTableDiskRoundTripBitIdentical is the golden identity
// pin: wrap the deployment's own analytic MobileNetV3 table in the
// measured-file envelope, write it to disk, load it back through the
// sushi-server -table decoder, and replay the pinned
// homogeneous-mbv3-degrade run serving FROM THE FILE. The PR-5 digest
// must hold — proving the envelope is lossless and the
// ClusterOptions.Table path changes nothing but the table's origin.
func TestAnalyticTableDiskRoundTripBitIdentical(t *testing.T) {
	probe, err := sushi.NewCluster(sushi.Options{Workload: sushi.MobileNetV3},
		sushi.WithReplicas(4))
	if err != nil {
		t.Fatal(err)
	}
	analytic := sushi.ClusterTableForTest(probe)
	path := filepath.Join(t.TempDir(), "mbv3-analytic.sushical")
	loaded, err := sushi.AnalyticRoundTripForTest(analytic, sushi.MobileNetV3, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Lat, analytic.Lat) ||
		!reflect.DeepEqual(loaded.Item, analytic.Item) ||
		!reflect.DeepEqual(loaded.Energy, analytic.Energy) {
		t.Fatal("disk round trip perturbed the table matrices")
	}

	ir := identityRuns[0]
	if ir.name != "homogeneous-mbv3-degrade" {
		t.Fatalf("identityRuns[0] is %q, the pin expects homogeneous-mbv3-degrade", ir.name)
	}
	got := outcomeDigest(ir.run(t, sushi.WithMeasuredTable(loaded)))
	if got != ir.golden {
		t.Errorf("serving from the round-tripped table diverged from the pin:\n  got    %s\n  golden %s", got, ir.golden)
	}
}

// TestDeployClusterServesFromMeasuredFile is the measured half: run a
// real calibration sweep (actual int8 forwards through the fast
// engine) over the full MobileNetV3 frontier, write the table, load it
// from disk and boot a cluster that schedules from the measured
// numbers. Guarded by -short — the sweep forwards every frontier
// SubNet at two batch sizes.
func TestDeployClusterServesFromMeasuredFile(t *testing.T) {
	if testing.Short() {
		t.Skip("real calibration sweep (skipped with -short)")
	}
	if raceEnabled {
		t.Skip("real calibration sweep (minutes under the race detector; kernels have dedicated race coverage)")
	}
	f, rep, err := sushi.Calibrate(sushi.CalibrateOptions{
		Workload: sushi.MobileNetV3,
		Reps:     1,
		Batches:  []int{1, 2},
		Cols:     2,
		CalibNs:  1, // skip the spin; wall-clock accuracy is not under test
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Scale <= 0 {
		t.Fatalf("calibration report missing or degenerate: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "mbv3-measured.sushical")
	if err := sushi.WriteCalibrationFile(path, f); err != nil {
		t.Fatal(err)
	}
	tab, w, err := sushi.LoadMeasuredTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if w != sushi.MobileNetV3 {
		t.Fatalf("loaded workload %q, want %q", w, sushi.MobileNetV3)
	}

	c, err := sushi.NewCluster(sushi.Options{Workload: w},
		sushi.WithReplicas(2), sushi.WithMeasuredTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if got := sushi.ClusterTableForTest(c); !reflect.DeepEqual(got.Lat, tab.Lat) {
		t.Fatal("cluster is not deciding from the measured table")
	}
	qs, err := sushi.UniformWorkload(40,
		sushi.Range{Lo: 60, Hi: 80}, sushi.Range{Lo: 1e-3, Hi: 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := c.ServeAll(context.Background(), qs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 40 {
		t.Fatalf("served %d of 40", len(rs))
	}
	for i, r := range rs {
		if r.SubNet == "" {
			t.Fatalf("query %d served no SubNet: %+v", i, r)
		}
	}
}
