//go:build !race

package sushi_test

// raceEnabled reports that the race detector is instrumenting this
// build; the real-forward calibration sweep test skips under it (the
// int8 kernels have dedicated race coverage on small shapes, and a
// full-frontier sweep is minutes of instrumented compute).
const raceEnabled = false
